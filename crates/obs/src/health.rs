//! Per-link health scoring: a hysteresis state machine over windowed
//! error readings.
//!
//! The paper's OAM block exposes FCS errors, sync state and LQR quality
//! precisely so an operator can judge a link *while it runs*.  This
//! module turns those raw counters into a three-state verdict —
//! [`HealthState::Healthy`] / [`Degraded`](HealthState::Degraded) /
//! [`Down`](HealthState::Down) — with hysteresis on both edges, so a
//! single bad window doesn't flap the state and a single clean window
//! doesn't clear a genuine degradation.  Thresholds and streak lengths
//! live in [`HealthPolicy`]; DESIGN.md §17 documents the defaults and
//! the resulting worst-case detection latency
//! (`degrade_after × sample interval` ticks).

use std::fmt;

/// The three-state verdict on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Error rates below every degrade threshold.
    Healthy,
    /// Errors, shedding or resync cost above the degrade thresholds —
    /// the link still moves traffic but needs attention.
    Degraded,
    /// Error rate at or above the down threshold: the link is
    /// effectively not delivering.
    Down,
}

impl HealthState {
    /// Stable lowercase name for labels and JSON.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Down => "down",
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One windowed reading of a link — *deltas* over the sample interval,
/// not run-lifetime totals (see `p5_trace::SnapshotDelta`).
#[derive(Debug, Clone, Copy, Default)]
pub struct HealthSample {
    /// Frames delivered this window.
    pub delivered: u64,
    /// Frames offered this window.
    pub offered: u64,
    /// Receive-side errors this window (FCS + aborts + runts + giants
    /// + header errors).
    pub errors: u64,
    /// Octets the receiver skipped resynchronising after lost
    /// delineation.
    pub resync_bytes: u64,
    /// Frames shed at admission this window.
    pub shed: u64,
    /// The LQR quality tracker's verdict, if the link runs link-quality
    /// monitoring (`p5_ppp::lqr::QualityTracker::is_tripped`).
    pub lqr_tripped: bool,
}

/// How a window reads against the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Clean,
    Bad,
    Dead,
}

/// Thresholds and hysteresis streak lengths.  All rates are per-window
/// fractions; streaks are consecutive sample windows.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Window is bad when `errors / (delivered + errors)` reaches this.
    pub degrade_error_rate: f64,
    /// Window is bad when `shed / offered` reaches this.
    pub degrade_shed_rate: f64,
    /// Window is bad when resync cost reaches this many octets.
    pub degrade_resync_bytes: u64,
    /// Window is *dead* when the error rate reaches this.
    pub down_error_rate: f64,
    /// Consecutive bad windows before `Healthy → Degraded`.
    pub degrade_after: u32,
    /// Consecutive dead windows before `→ Down`.
    pub down_after: u32,
    /// Consecutive clean windows before recovering one level
    /// (`Down → Degraded`, `Degraded → Healthy`).
    pub recover_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degrade_error_rate: 0.01,
            degrade_shed_rate: 0.05,
            degrade_resync_bytes: 64,
            down_error_rate: 0.25,
            degrade_after: 2,
            down_after: 4,
            recover_after: 4,
        }
    }
}

impl HealthPolicy {
    fn classify(&self, s: &HealthSample) -> Verdict {
        let seen = s.delivered + s.errors;
        let error_rate = if seen == 0 {
            0.0
        } else {
            s.errors as f64 / seen as f64
        };
        if s.errors > 0 && error_rate >= self.down_error_rate {
            return Verdict::Dead;
        }
        let shed_rate = if s.offered == 0 {
            0.0
        } else {
            s.shed as f64 / s.offered as f64
        };
        if s.lqr_tripped
            || (s.errors > 0 && error_rate >= self.degrade_error_rate)
            || (s.shed > 0 && shed_rate >= self.degrade_shed_rate)
            || s.resync_bytes >= self.degrade_resync_bytes
        {
            return Verdict::Bad;
        }
        Verdict::Clean
    }

    /// Instantaneous (hysteresis-free) verdict on one window — for
    /// one-shot readings like an end-of-run summary table.  Live
    /// monitoring should go through [`LinkHealth`], which adds the
    /// anti-flap streak logic.
    pub fn snap_judgment(&self, s: &HealthSample) -> HealthState {
        match self.classify(s) {
            Verdict::Clean => HealthState::Healthy,
            Verdict::Bad => HealthState::Degraded,
            Verdict::Dead => HealthState::Down,
        }
    }

    /// Worst-case ticks from fault onset to a `Degraded` verdict when
    /// sampling every `every` ticks: the fault can land just after a
    /// sample, then `degrade_after` full windows must read bad.
    pub fn detection_budget_ticks(&self, every: u64) -> u64 {
        every * (u64::from(self.degrade_after) + 1)
    }
}

/// A state change, as reported by [`LinkHealth::update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    pub from: HealthState,
    pub to: HealthState,
}

/// The per-link hysteresis machine.  Feed it one [`HealthSample`] per
/// sample window; it reports transitions and remembers streaks.
#[derive(Debug, Clone)]
pub struct LinkHealth {
    policy: HealthPolicy,
    state: HealthState,
    bad_streak: u32,
    dead_streak: u32,
    clean_streak: u32,
    /// Total state changes since construction.
    pub transitions: u64,
}

impl LinkHealth {
    pub fn new(policy: HealthPolicy) -> Self {
        LinkHealth {
            policy,
            state: HealthState::Healthy,
            bad_streak: 0,
            dead_streak: 0,
            clean_streak: 0,
            transitions: 0,
        }
    }

    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Score one window.  Returns the transition if the state changed.
    pub fn update(&mut self, sample: &HealthSample) -> Option<HealthTransition> {
        match self.policy.classify(sample) {
            Verdict::Clean => {
                self.clean_streak += 1;
                self.bad_streak = 0;
                self.dead_streak = 0;
            }
            Verdict::Bad => {
                self.bad_streak += 1;
                self.dead_streak = 0;
                self.clean_streak = 0;
            }
            Verdict::Dead => {
                // A dead window is also a bad window: the degrade edge
                // must not out-wait the down edge.
                self.bad_streak += 1;
                self.dead_streak += 1;
                self.clean_streak = 0;
            }
        }
        let next = match self.state {
            HealthState::Healthy | HealthState::Degraded
                if self.dead_streak >= self.policy.down_after =>
            {
                HealthState::Down
            }
            HealthState::Healthy if self.bad_streak >= self.policy.degrade_after => {
                HealthState::Degraded
            }
            HealthState::Degraded if self.clean_streak >= self.policy.recover_after => {
                HealthState::Healthy
            }
            // Recovery is one level at a time: a link that was Down
            // must re-prove itself through Degraded.
            HealthState::Down if self.clean_streak >= self.policy.recover_after => {
                HealthState::Degraded
            }
            s => s,
        };
        if next == self.state {
            return None;
        }
        let t = HealthTransition {
            from: self.state,
            to: next,
        };
        self.state = next;
        self.transitions += 1;
        self.bad_streak = 0;
        self.dead_streak = 0;
        self.clean_streak = 0;
        Some(t)
    }
}

/// Fleet roll-up: how many links sit in each state.  Bounded
/// cardinality by construction — three numbers regardless of fleet
/// size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthSummary {
    pub healthy: usize,
    pub degraded: usize,
    pub down: usize,
}

impl HealthSummary {
    pub fn scan<'a>(states: impl IntoIterator<Item = &'a HealthState>) -> Self {
        let mut s = HealthSummary::default();
        for st in states {
            match st {
                HealthState::Healthy => s.healthy += 1,
                HealthState::Degraded => s.degraded += 1,
                HealthState::Down => s.down += 1,
            }
        }
        s
    }

    pub fn total(&self) -> usize {
        self.healthy + self.degraded + self.down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bad() -> HealthSample {
        HealthSample {
            delivered: 90,
            offered: 100,
            errors: 10, // 10% error rate >= 1% degrade threshold
            ..HealthSample::default()
        }
    }

    fn clean() -> HealthSample {
        HealthSample {
            delivered: 100,
            offered: 100,
            ..HealthSample::default()
        }
    }

    fn dead() -> HealthSample {
        HealthSample {
            delivered: 10,
            offered: 100,
            errors: 90, // 90% >= 25% down threshold
            ..HealthSample::default()
        }
    }

    #[test]
    fn one_bad_window_does_not_flap() {
        let mut h = LinkHealth::new(HealthPolicy::default());
        assert!(h.update(&bad()).is_none());
        assert_eq!(h.state(), HealthState::Healthy);
        // Second consecutive bad window crosses degrade_after = 2.
        let t = h.update(&bad()).expect("transition");
        assert_eq!(t.from, HealthState::Healthy);
        assert_eq!(t.to, HealthState::Degraded);
    }

    #[test]
    fn recovery_needs_a_clean_streak_and_steps_one_level() {
        let mut h = LinkHealth::new(HealthPolicy::default());
        // Streaks reset at each transition: 2 dead windows reach
        // Degraded, 4 more reach Down.
        for _ in 0..2 {
            h.update(&dead());
        }
        assert_eq!(h.state(), HealthState::Degraded);
        for _ in 0..4 {
            h.update(&dead());
        }
        assert_eq!(h.state(), HealthState::Down);
        // Three clean windows: still Down (recover_after = 4).
        for _ in 0..3 {
            assert!(h.update(&clean()).is_none());
        }
        let t = h.update(&clean()).expect("one-level recovery");
        assert_eq!(t.to, HealthState::Degraded);
        for _ in 0..3 {
            assert!(h.update(&clean()).is_none());
        }
        assert_eq!(
            h.update(&clean()).unwrap().to,
            HealthState::Healthy,
            "second clean streak completes the recovery"
        );
        assert_eq!(h.transitions, 4);
    }

    #[test]
    fn interrupted_streaks_reset() {
        let mut h = LinkHealth::new(HealthPolicy::default());
        h.update(&bad());
        h.update(&clean()); // streak broken
        assert!(h.update(&bad()).is_none(), "streak restarted at 1");
        assert_eq!(h.state(), HealthState::Healthy);
    }

    #[test]
    fn shed_resync_and_lqr_also_degrade() {
        let p = HealthPolicy::default();
        let mut shed = LinkHealth::new(p);
        let s = HealthSample {
            offered: 100,
            delivered: 80,
            shed: 20, // 20% >= 5%
            ..HealthSample::default()
        };
        shed.update(&s);
        assert_eq!(shed.update(&s).unwrap().to, HealthState::Degraded);

        let mut resync = LinkHealth::new(p);
        let s = HealthSample {
            delivered: 100,
            resync_bytes: 64,
            ..HealthSample::default()
        };
        resync.update(&s);
        assert_eq!(resync.update(&s).unwrap().to, HealthState::Degraded);

        let mut lqr = LinkHealth::new(p);
        let s = HealthSample {
            delivered: 100,
            lqr_tripped: true,
            ..HealthSample::default()
        };
        lqr.update(&s);
        assert_eq!(lqr.update(&s).unwrap().to, HealthState::Degraded);
    }

    #[test]
    fn idle_windows_read_clean() {
        let mut h = LinkHealth::new(HealthPolicy::default());
        for _ in 0..10 {
            assert!(h.update(&HealthSample::default()).is_none());
        }
        assert_eq!(h.state(), HealthState::Healthy);
    }

    #[test]
    fn summary_counts_states() {
        let states = [
            HealthState::Healthy,
            HealthState::Degraded,
            HealthState::Healthy,
            HealthState::Down,
        ];
        let s = HealthSummary::scan(states.iter());
        assert_eq!(
            s,
            HealthSummary {
                healthy: 2,
                degraded: 1,
                down: 1
            }
        );
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn detection_budget_covers_onset_alignment() {
        let p = HealthPolicy::default();
        assert_eq!(p.detection_budget_ticks(64), 64 * 3);
    }

    #[test]
    fn snap_judgment_maps_all_three_verdicts() {
        let p = HealthPolicy::default();
        assert_eq!(p.snap_judgment(&clean()), HealthState::Healthy);
        assert_eq!(p.snap_judgment(&bad()), HealthState::Degraded);
        assert_eq!(p.snap_judgment(&dead()), HealthState::Down);
    }
}
