//! The acceptance scenario, end to end: a seeded fault burst on one
//! link of a fleet is detected *live* — the health endpoint reports the
//! link Degraded within the documented tick budget while the run is
//! still in progress, and the flight recorder captures the triggering
//! window.

use std::io::{Read, Write};
use std::net::TcpStream;

use p5_fault::FaultSpec;
use p5_obs::{serve, Collector, CollectorConfig, HealthState};
use p5_runtime::{Fleet, FleetConfig, TrafficSpec};

const BAD_LINK: usize = 17;

fn faulted_fleet(links: usize, ticks: u64) -> Fleet {
    Fleet::new(FleetConfig {
        links,
        workers: 4,
        fault: Some(FaultSpec {
            ber: 5e-3,
            ..FaultSpec::default()
        }),
        fault_links: Some(vec![BAD_LINK]),
        trace_links: vec![BAD_LINK],
        seed: 0xD00D,
        traffic: Some(TrafficSpec {
            frames_per_tick: 1,
            ticks,
            ..TrafficSpec::default()
        }),
        ..FleetConfig::default()
    })
    .expect("fleet")
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("write");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    out
}

#[test]
fn seeded_burst_is_detected_live_within_budget() {
    let mut fleet = faulted_fleet(64, 4_000);
    let mut collector = Collector::new(CollectorConfig {
        every: 32,
        ..CollectorConfig::default()
    });
    let server = serve(collector.hub(), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // First leg: well past the detection budget, far short of the run.
    let budget = collector.config().policy.detection_budget_ticks(32);
    collector.watch(&mut fleet, 512);
    assert!(
        !fleet.is_idle(),
        "scenario needs the run still in progress at scrape time"
    );

    // Detection: the seeded link went Degraded within the budget.
    let first = collector
        .transitions()
        .iter()
        .find(|t| t.link == BAD_LINK && t.to == HealthState::Degraded)
        .copied()
        .expect("no Degraded transition recorded for the seeded link");
    assert!(
        first.tick <= budget,
        "detected at tick {} but the documented budget is {budget}",
        first.tick
    );
    for link in (0..64).filter(|&l| l != BAD_LINK) {
        assert_eq!(
            collector.link_state(link),
            Some(HealthState::Healthy),
            "link {link} was not seeded but left Healthy"
        );
    }

    // Live scrape over real TCP, mid-run.
    let health = http_get(addr, "/health");
    assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
    assert!(
        health.contains("\"link\":17"),
        "seeded link missing from /health: {health}"
    );
    assert!(!health.contains("\"healthy\":64"), "not all links healthy");
    let metrics = http_get(addr, "/metrics");
    assert!(
        metrics.contains("p5_obs_link_health{link=\"17\"}"),
        "{metrics}"
    );
    assert!(metrics.contains("p5_fleet_delivered"));
    assert!(metrics.contains("p5_obs_health_links{state=\"degraded\"}"));
    let flight = http_get(addr, "/flight");
    assert!(flight.contains("\"link\":17"), "{flight}");
    assert!(flight.contains("\"trigger\""));

    // The flight recorder holds the triggering window: samples leading
    // up to the transition, the transition itself, and device events
    // from the traced link.
    let pm = collector.postmortem(BAD_LINK).expect("postmortem");
    assert!(pm.contains("\"kind\":\"trigger\""));
    assert!(pm.contains("\"kind\":\"sample\""));
    assert!(pm.contains("\"to\":\"degraded\""));
    assert!(
        pm.contains("\"kind\":\"device\""),
        "device tap missing: {pm}"
    );
    assert!(
        collector.postmortem(0).is_none(),
        "healthy links don't trigger"
    );

    // Second leg: the run continues and the scrape keeps advancing.
    let before = collector.hub().tick();
    collector.watch(&mut fleet, 256);
    assert!(collector.hub().tick() > before);
    server.stop();
}

#[test]
fn clean_fleet_stays_healthy_and_series_windows() {
    let mut fleet = Fleet::new(FleetConfig {
        links: 8,
        workers: 2,
        traffic: Some(TrafficSpec {
            ticks: 600,
            duplex: true,
            ..TrafficSpec::default()
        }),
        ..FleetConfig::default()
    })
    .expect("fleet");
    let mut collector = Collector::new(CollectorConfig {
        every: 50,
        ..CollectorConfig::default()
    });
    collector.watch(&mut fleet, 100_000);
    let sum = collector.summary();
    assert_eq!(sum.healthy, 8);
    assert_eq!(sum.degraded + sum.down, 0);
    assert!(collector.transitions().is_empty());
    assert!(collector.samples() >= 2);
    // Windowed rate over the active windows is positive.
    let rate = collector
        .series()
        .window_rate_per_tick("delivered", collector.samples() as usize);
    assert!(rate > 0.0, "windowed delivery rate should be positive");
    assert_eq!(collector.flight_json(), "[]");
    let health = collector.hub().health();
    assert!(health.contains("\"healthy\":8"), "{health}");
    assert!(health.contains("\"unhealthy\":[]"));
}
