//! The fused fast path is an *optimisation*, not a behaviour: under any
//! traffic mix, width, and backpressure pattern, a link running the
//! fused encap→stuff→wire / delineate→destuff→decap paths delivers
//! exactly what the staged cycle-accurate pipeline delivers — the same
//! frames in the same order, the same flow totals, and the same
//! per-frame lifecycle trace events.
//!
//! Deliberately out of scope: anything cycle-denominated.  The fused
//! path does not advance `cycles`, so per-cycle occupancy, latency and
//! `StageStats::cycles` are cycle-model-only readings (DESIGN.md §15).

use p5_core::{decap, encap_tagged, DatapathWidth, RxStage, TxStage, P5};
use p5_stream::{EventKind, FrameId, SharedRecorder, StreamStage, Throttle, WireBuf, WordStream};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Everything a run observes that must be pacing- and path-invariant.
#[derive(Debug, PartialEq)]
struct Observed {
    delivered: Vec<(u16, Vec<u8>)>,
    /// Per-frame-id lifecycle event kinds, in per-frame order.
    lifecycles: BTreeMap<FrameId, Vec<EventKind>>,
    frames_sent: u64,
    frames_stuffed: u64,
    escapes_inserted: u64,
    frames_delineated: u64,
    escapes_removed: u64,
    tx_flow: (u64, u64),
    rx_flow: (u64, u64),
    rx_ok: u64,
    rx_errors: u64,
}

/// Drive `TxStage → RxStage` with per-stage throttles, exactly like a
/// `Stack` sweep (sink→source, drain before offer), until fully drained.
fn run_link(
    fused: bool,
    width: DatapathWidth,
    frames: &[Vec<u8>],
    tx_pattern: &[bool],
    rx_pattern: &[bool],
) -> Observed {
    let rec = SharedRecorder::with_capacity(1 << 15);
    let mut tx_dev = P5::new(width);
    tx_dev.fused_enabled = fused;
    tx_dev.set_trace(Box::new(rec.clone()));
    let mut rx_dev = P5::new(width);
    rx_dev.fused_enabled = fused;
    rx_dev.set_trace(Box::new(rec.clone()));
    let mut tx = Throttle::new(TxStage::new(tx_dev), tx_pattern.to_vec());
    let mut rx = Throttle::new(RxStage::new(rx_dev), rx_pattern.to_vec());

    let mut input = WireBuf::new();
    let mut mid = WireBuf::new();
    let mut out = WireBuf::new();
    for (i, payload) in frames.iter().enumerate() {
        encap_tagged(0x0021, payload, (i + 1) as FrameId, &mut input);
    }
    let mut sweeps = 0u32;
    loop {
        rx.drain(&mut out);
        rx.offer(&mut mid);
        tx.drain(&mut mid);
        tx.offer(&mut input);
        if input.is_empty() && mid.is_empty() && tx.is_idle() && rx.is_idle() {
            // One closing sweep moves the last classified frames out.
            rx.drain(&mut out);
            break;
        }
        sweeps += 1;
        assert!(sweeps < 200_000, "throttled link failed to drain");
    }

    let mut delivered = Vec::new();
    let mut frame = Vec::new();
    while out.pop_frame_into(&mut frame).is_some() {
        let (proto, payload) = decap(&frame).expect("delivered frames carry a protocol");
        delivered.push((proto, payload.to_vec()));
    }
    let mut lifecycles: BTreeMap<FrameId, Vec<EventKind>> = BTreeMap::new();
    for ev in rec.events() {
        if let Some(id) = ev.kind.frame_id() {
            lifecycles.entry(id).or_default().push(ev.kind);
        }
    }
    let txd = tx.inner.device();
    let rxd = rx.inner.device();
    Observed {
        delivered,
        lifecycles,
        frames_sent: txd.tx.control.frames_sent,
        frames_stuffed: txd.tx.escape.frames_stuffed,
        escapes_inserted: txd.tx.escape.escapes_inserted,
        frames_delineated: rxd.rx.escape.frames_delineated,
        escapes_removed: rxd.rx.escape.escapes_removed,
        tx_flow: (
            txd.tx.control.stats.words_out,
            txd.tx.control.stats.bytes_out,
        ),
        rx_flow: (
            rxd.rx.control.stats.words_out,
            rxd.rx.control.stats.bytes_out,
        ),
        rx_ok: rxd.rx_counters().frames_ok,
        rx_errors: rxd.rx_counters().errors(),
    }
}

fn frames_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![
                2 => Just(0x7Eu8),
                2 => Just(0x7Du8),
                6 => any::<u8>(),
            ],
            0..150,
        ),
        1..8,
    )
}

fn pattern_strategy() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fused_path_is_equivalent_to_staged_under_backpressure(
        frames in frames_strategy(),
        tx_pattern in pattern_strategy(),
        rx_pattern in pattern_strategy(),
        wide in any::<bool>(),
    ) {
        let width = if wide { DatapathWidth::W32 } else { DatapathWidth::W8 };
        // At least one ready beat per pattern (or nothing ever moves),
        // and an odd length so the pattern cannot phase-lock with the
        // two gate draws each sweep performs per stage.
        let mut tx_pattern = tx_pattern;
        tx_pattern.push(true);
        if tx_pattern.len() % 2 == 0 {
            tx_pattern.push(true);
        }
        let mut rx_pattern = rx_pattern;
        rx_pattern.push(true);
        if rx_pattern.len() % 2 == 0 {
            rx_pattern.push(true);
        }
        let fused = run_link(true, width, &frames, &tx_pattern, &rx_pattern);
        let staged = run_link(false, width, &frames, &tx_pattern, &rx_pattern);
        // Identity first (a sharper failure than fused-vs-staged diff):
        // a clean link must deliver every frame intact, both ways.
        let want: Vec<(u16, Vec<u8>)> =
            frames.iter().map(|p| (0x0021, p.clone())).collect();
        prop_assert_eq!(&staged.delivered, &want, "staged reference dropped frames");
        prop_assert_eq!(fused, staged);
    }

    #[test]
    fn fused_and_staged_emit_the_same_wire_bytes(
        frames in frames_strategy(),
        wide in any::<bool>(),
    ) {
        let width = if wide { DatapathWidth::W32 } else { DatapathWidth::W8 };
        let mut fused = P5::new(width);
        let mut staged = P5::new(width);
        staged.fused_enabled = false;
        for p in &frames {
            prop_assert!(fused.fused_submit_wire(0x0021, p, 0));
            staged.submit(0x0021, p.clone()).unwrap();
        }
        staged.run_until_idle(10_000_000);
        prop_assert_eq!(fused.take_wire_out(), staged.take_wire_out());
    }
}
