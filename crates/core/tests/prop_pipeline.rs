//! Property tests on the cycle-accurate pipelines: arbitrary PHY stall
//! patterns, frame mixes and widths never lose, duplicate, reorder or
//! corrupt a byte — the handshake invariants of the hardware design.

use p5_core::behavioral::BehavioralTx;
use p5_core::rx::RxPipeline;
use p5_core::tx::{TxDescriptor, TxPipeline};
use p5_core::word::Word;
use p5_hdlc::FcsMode;
use proptest::prelude::*;

fn frames_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![
                2 => Just(0x7Eu8),
                2 => Just(0x7Du8),
                6 => any::<u8>(),
            ],
            1..120,
        ),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tx_wire_is_stall_invariant(
        frames in frames_strategy(),
        stalls in proptest::collection::vec(any::<bool>(), 1..64),
        wide in any::<bool>(),
    ) {
        let width = if wide { 4 } else { 1 };
        // Golden: behavioural encoder.
        let mut sw = BehavioralTx::new(0xFF);
        let mut golden = Vec::new();
        for f in &frames {
            sw.encode_into(0x0021, f, &mut golden);
        }
        // Cycle model under an arbitrary repeating PHY stall pattern
        // (with at least one ready cycle, or the wire never moves).
        let mut stalls = stalls;
        stalls.push(true);
        let mut tx = TxPipeline::new(width, 0xFF, FcsMode::Fcs32);
        for f in &frames {
            tx.submit(TxDescriptor { protocol: 0x0021, payload: f.clone() }).unwrap();
        }
        let mut wire = Vec::new();
        let mut i = 0usize;
        let mut guard = 0u64;
        while !tx.idle() {
            let ready = stalls[i % stalls.len()];
            i += 1;
            if let Some(w) = tx.clock(ready) {
                prop_assert!(ready, "output while PHY stalled");
                wire.extend_from_slice(w.lanes());
            }
            guard += 1;
            prop_assert!(guard < 3_000_000, "runaway");
        }
        prop_assert_eq!(wire, golden);
    }

    #[test]
    fn rx_is_input_pacing_invariant(
        frames in frames_strategy(),
        gaps in proptest::collection::vec(0u8..4, 1..32),
        wide in any::<bool>(),
    ) {
        let width = if wide { 4usize } else { 1 };
        let mut sw = BehavioralTx::new(0xFF);
        let mut wire = Vec::new();
        for f in &frames {
            sw.encode_into(0x0021, f, &mut wire);
        }
        let mut rx = RxPipeline::new(width, 0xFF, FcsMode::Fcs32, 4096);
        let mut got = Vec::new();
        let mut gi = 0usize;
        let mut chunks = wire.chunks(width);
        let mut pending: Option<Word> = None;
        let mut guard = 0u64;
        loop {
            // Insert idle gaps between deliveries per the gap pattern.
            for _ in 0..gaps[gi % gaps.len()] {
                rx.clock(None);
            }
            gi += 1;
            if pending.is_none() {
                pending = chunks.next().map(Word::data);
            }
            let feed = if rx.ready() { pending.take() } else { None };
            let exhausted = feed.is_none() && pending.is_none() && chunks.len() == 0;
            rx.clock(feed);
            got.extend(rx.take_frames());
            if exhausted && rx.idle() {
                break;
            }
            guard += 1;
            prop_assert!(guard < 3_000_000, "runaway");
        }
        prop_assert_eq!(got.len(), frames.len());
        for (g, f) in got.iter().zip(&frames) {
            prop_assert_eq!(&g.payload, f);
        }
        prop_assert_eq!(rx.counters().fcs_errors, 0);
    }

    #[test]
    fn escape_gen_stats_are_consistent(
        payload in proptest::collection::vec(any::<u8>(), 1..600),
    ) {
        let mut tx = TxPipeline::new(4, 0xFF, FcsMode::Fcs32);
        let specials = payload.iter().filter(|&&b| b == 0x7E || b == 0x7D).count();
        tx.submit(TxDescriptor { protocol: 0x0021, payload: payload.clone() }).unwrap();
        let mut wire_len = 0usize;
        while !tx.idle() {
            if let Some(w) = tx.clock(true) {
                wire_len += w.len as usize;
            }
        }
        // Conservation: wire = flags(2) + header(4) + payload + fcs(4)
        // + one extra byte per escaped char (incl. any in header/FCS).
        let escapes = tx.escape.escapes_inserted as usize;
        prop_assert!(escapes >= specials);
        prop_assert_eq!(wire_len, 2 + 4 + payload.len() + 4 + escapes);
        // The resynchronisation buffer never exceeded its capacity.
        prop_assert!(tx.escape.stats.max_occupancy <= 16);
    }
}
