//! Host firmware for the P⁵ — the software a MicroBlaze-class embedded
//! CPU runs against the OAM register map (the paper: the device leaves
//! "more than sufficient room to incorporate a Xilinx Microblaze
//! microprocessor core ... enabling system programmability").
//!
//! Everything here goes through the [`MmioBus`] — the driver never
//! touches the datapath structs directly, so it exercises exactly the
//! programmability surface the hardware exposes.

use crate::oam::{ctrl, regs, Interrupt, MmioBus, Oam, OamHandle};
use crate::p5::P5;

/// Link configuration the driver programs at init.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// HDLC address octet (0xFF for plain PPP, a MAPOS address for
    /// switched operation).
    pub address: u8,
    pub promiscuous: bool,
    /// FCS-16 instead of the default FCS-32.
    pub fcs16: bool,
    /// Maximum receive body (header + payload).
    pub max_body: u32,
    /// Interrupt causes to enable.
    pub int_mask: u32,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            address: 0xFF,
            promiscuous: false,
            fcs16: false,
            max_body: 1504,
            int_mask: Interrupt::RxFrame as u32 | Interrupt::RxError as u32,
        }
    }
}

/// Snapshot of the link counters, as firmware reports them upward.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    pub tx_frames: u32,
    pub rx_frames: u32,
    pub fcs_errors: u32,
    pub aborts: u32,
    pub runts: u32,
    pub giants: u32,
    pub addr_mismatches: u32,
    pub header_errors: u32,
}

impl LinkStats {
    pub fn total_errors(&self) -> u32 {
        self.fcs_errors
            + self.aborts
            + self.runts
            + self.giants
            + self.addr_mismatches
            + self.header_errors
    }
}

/// Interrupt causes the service routine observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrqEvent {
    RxFrame,
    RxError,
    TxDone,
}

/// The P⁵ device driver.
pub struct Driver {
    bus: Oam,
}

impl Driver {
    pub fn new(oam: OamHandle) -> Self {
        Self { bus: Oam::new(oam) }
    }

    /// Program the device: address, modes, limits, interrupt mask.
    pub fn init(&mut self, cfg: DriverConfig) {
        let mut c = ctrl::TX_ENABLE | ctrl::RX_ENABLE;
        if cfg.promiscuous {
            c |= ctrl::PROMISCUOUS;
        }
        if cfg.fcs16 {
            c |= ctrl::FCS16;
        }
        self.bus.write(regs::CTRL, c);
        self.bus.write(regs::ADDRESS, cfg.address as u32);
        self.bus.write(regs::MAX_BODY, cfg.max_body);
        self.bus.write(regs::INT_PENDING, u32::MAX); // clear stale causes
        self.bus.write(regs::INT_ENABLE, cfg.int_mask);
    }

    /// Reprogram just the station address (MAPOS renumbering).
    pub fn set_address(&mut self, address: u8) {
        self.bus.write(regs::ADDRESS, address as u32);
    }

    /// Enter or leave diagnostic loopback.
    pub fn set_loopback(&mut self, on: bool) {
        let mut c = self.bus.read(regs::CTRL);
        if on {
            c |= ctrl::LOOPBACK;
        } else {
            c &= !ctrl::LOOPBACK;
        }
        self.bus.write(regs::CTRL, c);
    }

    /// The interrupt service routine: read INT_PENDING, acknowledge,
    /// return the decoded causes.
    pub fn service_interrupts(&mut self) -> Vec<IrqEvent> {
        let pending = self.bus.read(regs::INT_PENDING);
        if pending == 0 {
            return Vec::new();
        }
        self.bus.write(regs::INT_PENDING, pending);
        let mut events = Vec::new();
        if pending & Interrupt::RxFrame as u32 != 0 {
            events.push(IrqEvent::RxFrame);
        }
        if pending & Interrupt::RxError as u32 != 0 {
            events.push(IrqEvent::RxError);
        }
        if pending & Interrupt::TxDone as u32 != 0 {
            events.push(IrqEvent::TxDone);
        }
        events
    }

    /// Read the full counter block.
    pub fn stats(&self) -> LinkStats {
        LinkStats {
            tx_frames: self.bus.read(regs::TX_FRAMES),
            rx_frames: self.bus.read(regs::RX_FRAMES),
            fcs_errors: self.bus.read(regs::FCS_ERRORS),
            aborts: self.bus.read(regs::ABORTS),
            runts: self.bus.read(regs::RUNTS),
            giants: self.bus.read(regs::GIANTS),
            addr_mismatches: self.bus.read(regs::ADDR_MISMATCHES),
            header_errors: self.bus.read(regs::HEADER_ERRORS),
        }
    }

    /// Power-on self test: put the device in loopback, send a test
    /// pattern through the whole datapath, verify it comes back intact
    /// and error-free.  Returns true on pass; always leaves loopback
    /// cleared.
    pub fn self_test(&mut self, dev: &mut P5) -> bool {
        self.set_loopback(true);
        let before = self.stats();
        // A pattern exercising stuffing (flags/escapes) and the CRC.
        let pattern: Vec<u8> = (0u16..256)
            .map(|i| match i % 5 {
                0 => 0x7E,
                1 => 0x7D,
                _ => (i * 7) as u8,
            })
            .collect();
        dev.submit(0x0021, pattern.clone()).unwrap();
        dev.run_until_idle(1_000_000);
        let frames = dev.take_received();
        let after = self.stats();
        self.set_loopback(false);
        frames.len() == 1
            && frames[0].payload == pattern
            && after.total_errors() == before.total_errors()
            && after.rx_frames == before.rx_frames + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::p5::DatapathWidth;

    #[test]
    fn init_programs_registers() {
        let dev = P5::new(DatapathWidth::W32);
        let mut drv = Driver::new(dev.oam.clone());
        drv.init(DriverConfig {
            address: 0x07,
            promiscuous: true,
            fcs16: false,
            max_body: 9000,
            int_mask: Interrupt::TxDone as u32,
        });
        dev.oam.read_state(|s| {
            assert_eq!(s.address, 0x07);
            assert_eq!(s.max_body, 9000);
            assert_ne!(s.ctrl & ctrl::PROMISCUOUS, 0);
            assert_eq!(s.int_enable, Interrupt::TxDone as u32);
        });
    }

    #[test]
    fn self_test_passes_on_a_healthy_device() {
        for width in [DatapathWidth::W8, DatapathWidth::W32] {
            let mut dev = P5::new(width);
            let mut drv = Driver::new(dev.oam.clone());
            drv.init(DriverConfig::default());
            assert!(drv.self_test(&mut dev), "width {width:?}");
            // Loopback cleared afterwards.
            dev.oam
                .read_state(|s| assert_eq!(s.ctrl & ctrl::LOOPBACK, 0));
        }
    }

    #[test]
    fn loopback_isolates_the_phy() {
        let mut dev = P5::new(DatapathWidth::W32);
        let mut drv = Driver::new(dev.oam.clone());
        drv.init(DriverConfig::default());
        drv.set_loopback(true);
        dev.submit(0x0021, b"stay inside".to_vec()).unwrap();
        dev.run_until_idle(100_000);
        assert!(dev.take_wire_out().is_empty(), "nothing may reach the PHY");
        assert_eq!(dev.take_received().len(), 1);
    }

    #[test]
    fn isr_drains_pending_causes() {
        let mut dev = P5::new(DatapathWidth::W32);
        let mut drv = Driver::new(dev.oam.clone());
        drv.init(DriverConfig::default());
        drv.set_loopback(true);
        dev.submit(0x0021, vec![1, 2, 3]).unwrap();
        dev.run_until_idle(100_000);
        dev.clock();
        let events = drv.service_interrupts();
        assert!(events.contains(&IrqEvent::RxFrame), "{events:?}");
        assert!(drv.service_interrupts().is_empty(), "acknowledged");
        assert!(!dev.oam.irq_asserted());
    }

    #[test]
    fn stats_snapshot_via_bus() {
        let mut dev = P5::new(DatapathWidth::W32);
        let mut drv = Driver::new(dev.oam.clone());
        drv.init(DriverConfig::default());
        drv.set_loopback(true);
        for i in 0..5u8 {
            dev.submit(0x0021, vec![i; 10]).unwrap();
        }
        dev.run_until_idle(1_000_000);
        dev.clock();
        let s = drv.stats();
        assert_eq!(s.tx_frames, 5);
        assert_eq!(s.rx_frames, 5);
        assert_eq!(s.total_errors(), 0);
    }

    #[test]
    fn self_test_fails_if_addresses_mismatch() {
        // Simulate a misprogrammed device: the receiver filters on a
        // different address than the transmitter stamps.
        let mut dev = P5::new(DatapathWidth::W32);
        let mut drv = Driver::new(dev.oam.clone());
        drv.init(DriverConfig::default());
        drv.set_loopback(true);
        // Transmit one frame with address 0xFF...
        dev.submit(0x0021, b"probe".to_vec()).unwrap();
        dev.run(200);
        // ...then flip the station address mid-flight.
        drv.set_address(0x0B);
        dev.run_until_idle(1_000_000);
        dev.clock();
        let s = drv.stats();
        assert!(s.addr_mismatches >= 1 || s.rx_frames == 1);
    }
}
