//! # P⁵ — the Point-to-Point-Protocol Packet Processor
//!
//! A cycle-accurate software model of the paper's contribution: a
//! "highly pipelined 2.5 Gbps Point-to-Point-Protocol Packet Processor"
//! with an 8-bit (625 Mbps) and a 32-bit (2.5 Gbps) datapath.
//!
//! The system architecture follows Figure 2 of the paper:
//!
//! ```text
//!  Shared Memory ──┐                         ┌── Shared Memory
//!                  ▼                         ▼
//!            ┌──────────────┐  Protocol ┌──────────────┐
//!   µP bus ⇄ │ PPP          │◀─ OAM  ─▶ │ PPP          │ ⇄ µP bus
//!            │ Transmitter  │           │ Receiver     │
//!            └──────┬───────┘           └──────▲───────┘
//!                   ▼  PHY                     │  PHY
//! ```
//!
//! Each direction is the three-stage pipeline of Figures 3 and 4:
//!
//! * **Transmitter** — [`tx::TxControl`] (frame assembly from shared
//!   memory, header prepend) → [`tx::TxCrc`] (parallel FCS-32 via the
//!   `p5-crc` matrices, FCS append) → [`tx::EscapeGen`] (byte stuffing
//!   with the byte-sorting repack network, resynchronisation buffer and
//!   backpressure of Figure 5).
//! * **Receiver** — [`rx::EscapeDetect`] (flag delineation, destuffing,
//!   bubble compaction of Figure 6) → [`rx::RxCrc`] (FCS check) →
//!   [`rx::RxControl`] (header validation, shared-memory delivery,
//!   counters, interrupts).
//! * **Protocol OAM** — [`oam::Oam`]: the memory-mapped register file
//!   that makes the device *programmable*: station address (MAPOS),
//!   FCS mode, promiscuous mode, interrupt enables, error counters.
//!
//! Words move through the pipeline one per clock ("a PPP frame
//! propagates at 32 bits per clock cycle through the transmitter or
//! receiver block"); every stage is a registered unit with ready/valid
//! handshakes, so stalls, pipeline-fill latency, and the escape units'
//! buffer occupancies are all observable — they feed the Figure 5/6 and
//! throughput experiments in `p5-bench`.
//!
//! ```
//! use p5_core::{DatapathWidth, P5};
//!
//! let mut dev = P5::new(DatapathWidth::W32);     // the 2.5 Gbps datapath
//! dev.submit(0x0021, vec![0xDE, 0xAD, 0x7E]).unwrap(); // an IPv4 datagram
//! dev.run_until_idle(10_000);
//! let wire = dev.take_wire_out();                // flagged, stuffed, FCS'd
//!
//! let mut peer = P5::new(DatapathWidth::W32);
//! peer.put_wire_in(&wire);
//! peer.run_until_idle(10_000);
//! assert_eq!(peer.take_received()[0].payload, vec![0xDE, 0xAD, 0x7E]);
//! ```

pub mod behavioral;
pub mod delay;
pub mod firmware;
pub mod oam;
pub mod p5;
pub mod rx;
pub mod stager;
pub mod stats;
pub mod stream;
pub mod tx;
pub mod word;

pub use firmware::{Driver, DriverConfig, LinkStats};
pub use oam::{regs, Interrupt, MmioBus, Oam, OamHandle};
pub use p5::{DatapathWidth, ReceivedFrame, P5};
pub use stats::StageStats;
pub use stream::{decap, encap, encap_tagged, RxStage, TxStage};
pub use tx::TxQueueFull;
pub use word::Word;

// The stream layer the stages implement (re-exported so downstream code
// can compose stacks without naming p5-stream directly).
pub use p5_stream::{
    render_table, to_json, to_prometheus, Chain, Event, EventKind, FrameId, NullSink, Observable,
    Poll, SharedRecorder, Snapshot, Stack, StreamStage, Throttle, TraceSink, WireBuf, WordStream,
};
