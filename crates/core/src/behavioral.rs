//! The behavioural (non-cycle-accurate) P⁵ datapath: the same
//! transformation as the hardware pipeline expressed as plain software
//! over `p5-hdlc`/`p5-ppp`.
//!
//! Two uses:
//! * the **golden model** the cycle-accurate pipeline is checked against
//!   byte-for-byte, and
//! * the **software baseline** in the throughput benches (what a CPU
//!   doing PPP in software achieves vs. the hardware's bytes/cycle).

use crate::rx::ReceivedFrame;
use p5_hdlc::{DeframeEvent, Deframer, DeframerConfig, Framer, FramerConfig};

/// Behavioural transmitter: datagrams → wire bytes.
pub struct BehavioralTx {
    framer: Framer,
    address: u8,
}

impl BehavioralTx {
    pub fn new(address: u8) -> Self {
        Self {
            framer: Framer::new(FramerConfig::default()),
            address,
        }
    }

    /// Encode one datagram into the wire stream.
    pub fn encode_into(&mut self, protocol: u16, payload: &[u8], wire: &mut Vec<u8>) {
        let mut body = Vec::with_capacity(payload.len() + 4);
        body.push(self.address);
        body.push(0x03);
        body.extend_from_slice(&protocol.to_be_bytes());
        body.extend_from_slice(payload);
        self.framer.encode_into(&body, wire);
    }

    /// Encode a batch of datagrams to a fresh wire stream.
    pub fn encode_all(&mut self, frames: &[(u16, Vec<u8>)]) -> Vec<u8> {
        let mut wire = Vec::new();
        for (proto, payload) in frames {
            self.encode_into(*proto, payload, &mut wire);
        }
        wire
    }
}

/// Behavioural receiver: wire bytes → frames + error counts.
pub struct BehavioralRx {
    deframer: Deframer,
    address: u8,
    promiscuous: bool,
    pub address_mismatches: u64,
    pub header_errors: u64,
}

impl BehavioralRx {
    pub fn new(address: u8) -> Self {
        Self {
            deframer: Deframer::new(DeframerConfig {
                max_body: 4096,
                ..Default::default()
            }),
            address,
            promiscuous: false,
            address_mismatches: 0,
            header_errors: 0,
        }
    }

    pub fn stats(&self) -> &p5_hdlc::RxStats {
        self.deframer.stats()
    }

    /// Decode wire bytes into delivered frames.
    pub fn decode(&mut self, wire: &[u8]) -> Vec<ReceivedFrame> {
        let mut out = Vec::new();
        for ev in self.deframer.push_bytes(wire) {
            if let DeframeEvent::Frame(body) = ev {
                if body.len() < 4 {
                    self.header_errors += 1;
                    continue;
                }
                let (addr, ctrl) = (body[0], body[1]);
                if addr != self.address && addr != 0xFF && !self.promiscuous {
                    self.address_mismatches += 1;
                    continue;
                }
                let protocol = u16::from_be_bytes([body[2], body[3]]);
                if ctrl != 0x03 || protocol & 1 == 0 {
                    self.header_errors += 1;
                    continue;
                }
                out.push(ReceivedFrame {
                    address: addr,
                    control: ctrl,
                    protocol,
                    payload: body[4..].to_vec(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavioral_round_trip() {
        let mut tx = BehavioralTx::new(0xFF);
        let frames = vec![(0x0021u16, b"one".to_vec()), (0x0057, b"two".to_vec())];
        let wire = tx.encode_all(&frames);
        let mut rx = BehavioralRx::new(0xFF);
        let got = rx.decode(&wire);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].payload, b"one");
        assert_eq!(got[1].protocol, 0x0057);
    }

    #[test]
    fn behavioral_matches_cycle_model_on_random_traffic() {
        use crate::p5::{DatapathWidth, P5};
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2003);
        for width in [DatapathWidth::W8, DatapathWidth::W32] {
            let mut frames = Vec::new();
            for _ in 0..20 {
                let len = rng.gen_range(1..300);
                // Bias toward flags/escapes to stress the sorter.
                let payload: Vec<u8> = (0..len)
                    .map(|_| match rng.gen_range(0..4) {
                        0 => 0x7E,
                        1 => 0x7D,
                        _ => rng.gen(),
                    })
                    .collect();
                frames.push((0x0021u16, payload));
            }
            // Golden wire.
            let golden = BehavioralTx::new(0xFF).encode_all(&frames);
            // Cycle-accurate wire.
            let mut p5 = P5::new(width);
            for (proto, payload) in &frames {
                p5.submit(*proto, payload.clone()).unwrap();
            }
            p5.run_until_idle(2_000_000);
            let wire = p5.take_wire_out();
            assert_eq!(wire, golden, "width {width:?}");
            // And back through the cycle-accurate receiver.
            let mut p5b = P5::new(width);
            p5b.put_wire_in(&wire);
            p5b.run_until_idle(2_000_000);
            let got = p5b.take_received();
            assert_eq!(got.len(), frames.len());
            for (f, (_, p)) in got.iter().zip(&frames) {
                assert_eq!(&f.payload, p);
            }
        }
    }
}
