//! The P⁵ receiver (Figure 4): Escape Detect → CRC → Control, the mirror
//! image of the transmitter, including the Figure 6 "bubble" compaction
//! performed by the byte sorter.

use crate::delay::DelayLine;
use crate::stager::ByteStager;
use crate::stats::StageStats;
use crate::word::Word;
use p5_crc::{CrcEngine, EngineKind, FcsEngine};
use p5_hdlc::{FcsMode, ESCAPE, ESCAPE_XOR, FLAG};
use p5_stream::BufPool;
use std::collections::VecDeque;

/// A frame delivered to shared memory by the receive control unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceivedFrame {
    pub address: u8,
    pub control: u8,
    pub protocol: u16,
    pub payload: Vec<u8>,
}

/// Receive-side error tallies (OAM counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RxCounters {
    pub frames_ok: u64,
    pub fcs_errors: u64,
    pub aborts: u64,
    pub runts: u64,
    pub giants: u64,
    pub address_mismatches: u64,
    pub header_errors: u64,
}

impl RxCounters {
    /// Total defective frames across every error class.
    pub fn errors(&self) -> u64 {
        self.fcs_errors
            + self.aborts
            + self.runts
            + self.giants
            + self.address_mismatches
            + self.header_errors
    }
}

impl p5_stream::Observable for RxCounters {
    fn snapshot(&self) -> p5_stream::Snapshot {
        p5_stream::Snapshot::new("rx-counters")
            .counter("frames_ok", self.frames_ok)
            .counter("fcs_errors", self.fcs_errors)
            .counter("aborts", self.aborts)
            .counter("runts", self.runts)
            .counter("giants", self.giants)
            .counter("address_mismatches", self.address_mismatches)
            .counter("header_errors", self.header_errors)
    }
}

/// The Escape Detect unit — the paper's Figure 6 problem.
///
/// Wire words arrive at full rate; escape octets are deleted and the
/// following byte XORed, which opens "bubbles" in the stream.  Deleted
/// bytes are compacted through the staging store so downstream sees
/// dense frame words again.  Flags delineate frames; `0x7D 0x7E` aborts.
#[derive(Debug)]
pub struct EscapeDetect {
    width: usize,
    stager: ByteStager,
    in_frame: bool,
    esc_pending: bool,
    sof_pending: bool,
    delay: DelayLine,
    pub stats: StageStats,
    /// Escape sequences removed.
    pub escapes_removed: u64,
    /// Idle flag octets discarded between frames.
    pub idle_flags: u64,
    /// Frames delineated (closing flag or abort seen on the wire).
    pub frames_delineated: u64,
}

impl EscapeDetect {
    pub fn pipe_stages(width: usize) -> usize {
        if width >= 4 {
            4
        } else {
            1
        }
    }

    pub fn new(width: usize, buffer_capacity: usize) -> Self {
        assert!(buffer_capacity >= width + 2);
        let stages = Self::pipe_stages(width);
        Self {
            width,
            stager: ByteStager::new(buffer_capacity),
            in_frame: false,
            esc_pending: false,
            sof_pending: false,
            delay: DelayLine::new(stages - 1),
            stats: StageStats::default(),
            escapes_removed: 0,
            idle_flags: 0,
            frames_delineated: 0,
        }
    }

    pub fn default_capacity(width: usize) -> usize {
        4 * width + 4
    }

    /// Can absorb one more wire word (≤ width bytes + an End strobe).
    pub fn ready(&self) -> bool {
        self.stager.free() > self.width
    }

    pub fn occupancy(&self) -> usize {
        self.stager.occupancy()
    }

    pub fn idle(&self) -> bool {
        self.stager.is_empty() && self.delay.is_clear()
    }

    pub fn clock(&mut self, input: Option<Word>, out_ready: bool) -> Option<Word> {
        self.stats.cycles += 1;
        if let Some(w) = input {
            self.stats.words_in += 1;
            for &b in w.lanes() {
                if b == FLAG {
                    if self.esc_pending {
                        // Escape then flag: transmitter abort.
                        self.stager.push_end(true);
                        self.esc_pending = false;
                        self.in_frame = false;
                        self.frames_delineated += 1;
                    } else if self.in_frame {
                        self.stager.push_end(false);
                        self.in_frame = false;
                        self.frames_delineated += 1;
                    } else {
                        self.idle_flags += 1;
                    }
                } else {
                    if !self.in_frame {
                        self.in_frame = true;
                        self.sof_pending = true;
                    }
                    if self.esc_pending {
                        self.esc_pending = false;
                        self.escapes_removed += 1;
                        self.stager
                            .push_byte(b ^ ESCAPE_XOR, self.sof_pending, false);
                        self.sof_pending = false;
                    } else if b == ESCAPE {
                        self.esc_pending = true;
                    } else {
                        self.stager.push_byte(b, self.sof_pending, false);
                        self.sof_pending = false;
                    }
                }
            }
            self.stats.note_occupancy(self.stager.occupancy());
        }
        if !out_ready {
            return None;
        }
        let fresh = self.stager.pop_word(self.width, false);
        if fresh.is_none() {
            self.stats.bubble_cycles += 1;
        }
        let out = self.delay.shift(fresh);
        if let Some(w) = &out {
            self.stats.words_out += 1;
            self.stats.bytes_out += w.len as u64;
        }
        out
    }
}

/// Receive CRC unit: recomputes the FCS over everything between the
/// flags (body + received FCS) and annotates the `eof` word with the
/// magic-residue verdict.
#[derive(Debug)]
pub struct RxCrc {
    fcs: FcsMode,
    engine: Option<FcsEngine>,
    /// Two-deep register (decouples input acceptance from output
    /// readiness).
    regs: VecDeque<Word>,
    pub stats: StageStats,
}

impl RxCrc {
    pub fn new(width: usize, fcs: FcsMode) -> Self {
        Self::with_engine_kind(width, fcs, EngineKind::default())
    }

    /// Select the CRC realisation (see [`crate::tx::TxCrc::with_engine_kind`]).
    pub fn with_engine_kind(width: usize, fcs: FcsMode, kind: EngineKind) -> Self {
        let engine = crate::tx::fcs_params(fcs).map(|p| FcsEngine::new(kind, p, width));
        Self {
            fcs,
            engine,
            regs: VecDeque::with_capacity(2),
            stats: StageStats::default(),
        }
    }

    /// Which realisation is currently checking the FCS.
    pub fn engine_kind(&self) -> Option<EngineKind> {
        self.engine.as_ref().map(|e| e.kind())
    }

    pub fn ready(&self) -> bool {
        self.regs.len() < 2
    }

    pub fn idle(&self) -> bool {
        self.regs.is_empty()
    }

    pub fn clock(&mut self, input: Option<Word>, out_ready: bool) -> Option<Word> {
        self.stats.cycles += 1;
        let out = if out_ready {
            self.regs.pop_front()
        } else {
            None
        };
        if let Some(mut w) = input {
            self.stats.words_in += 1;
            if w.sof {
                if let Some(e) = &mut self.engine {
                    e.reset();
                }
            }
            if let Some(e) = &mut self.engine {
                e.update_word(w.lanes());
            }
            if w.eof && !w.abort {
                w.crc_ok = Some(match (&self.engine, self.fcs) {
                    (Some(e), _) => e.residue() == e.params().good_residue,
                    (None, _) => true,
                });
            }
            self.regs.push_back(w);
        }
        if let Some(w) = &out {
            self.stats.words_out += 1;
            self.stats.bytes_out += w.len as u64;
        }
        out
    }
}

/// Receive control unit: accumulates frame words, strips and validates
/// the header against the programmable address register, bounds frame
/// length, and delivers good payloads to shared memory while tallying
/// every defect class.
#[derive(Debug)]
pub struct RxControl {
    fcs: FcsMode,
    /// Programmable station address.
    pub address: u8,
    /// Accept any address (MAPOS switch port / diagnostics).
    pub promiscuous: bool,
    /// Maximum body length (header + payload, before FCS).
    pub max_body: usize,
    acc: Vec<u8>,
    overrun: bool,
    crc_verdict: Option<bool>,
    /// A SOF has been seen and the frame it opened has not finished:
    /// words arriving without it are post-reset/post-error stragglers
    /// and must not be reassembled into a phantom frame.
    in_frame: bool,
    /// Bytes discarded while hunting for the next SOF.
    pub resync_bytes_skipped: u64,
    out: VecDeque<ReceivedFrame>,
    /// Recycled payload storage (shared with the device pool via
    /// [`RxControl::set_pool`]).
    pool: BufPool,
    pub counters: RxCounters,
    pub stats: StageStats,
}

impl RxControl {
    pub fn new(fcs: FcsMode, address: u8, max_body: usize) -> Self {
        Self {
            fcs,
            address,
            promiscuous: false,
            max_body,
            acc: Vec::new(),
            overrun: false,
            crc_verdict: None,
            in_frame: false,
            resync_bytes_skipped: 0,
            out: VecDeque::new(),
            pool: BufPool::new(),
            counters: RxCounters::default(),
            stats: StageStats::default(),
        }
    }

    /// Share payload storage with a device-wide buffer pool.
    pub fn set_pool(&mut self, pool: BufPool) {
        self.pool = pool;
    }

    pub fn ready(&self) -> bool {
        true // shared memory sink
    }

    pub fn idle(&self) -> bool {
        self.acc.is_empty()
    }

    /// Drain frames delivered to shared memory.
    pub fn take_frames(&mut self) -> Vec<ReceivedFrame> {
        self.out.drain(..).collect()
    }

    /// Frames delivered but not yet drained by [`RxControl::take_frames`]
    /// (newest at the back) — lets a tracer stamp `Delivered` events with
    /// the frame length without consuming the queue.
    pub fn queued_frames(&self) -> &VecDeque<ReceivedFrame> {
        &self.out
    }

    pub fn clock(&mut self, input: Option<Word>) {
        self.stats.cycles += 1;
        let Some(w) = input else { return };
        self.stats.words_in += 1;
        if w.sof {
            self.acc.clear();
            self.overrun = false;
            self.in_frame = true;
        }
        if !self.in_frame {
            // Out of sync: the receiver is hunting for the next frame
            // start, so these lanes are discarded rather than copied
            // into the accumulator (they could only ever assemble into
            // a phantom frame).  An EOF still closes the hunt window so
            // the error is observable as a runt.
            self.resync_bytes_skipped += w.len as u64;
            if w.eof {
                self.crc_verdict = w.crc_ok;
                self.finish(w.abort);
            }
            return;
        }
        if self.acc.len() + w.len as usize > self.max_body + self.fcs.len() {
            self.overrun = true;
        } else {
            self.acc.extend_from_slice(w.lanes());
        }
        if w.eof {
            self.crc_verdict = w.crc_ok;
            self.finish(w.abort);
        }
    }

    fn finish(&mut self, abort: bool) {
        self.in_frame = false;
        let body = std::mem::take(&mut self.acc);
        let overrun = std::mem::take(&mut self.overrun);
        let verdict = self.crc_verdict.take();
        self.classify(&body, abort, overrun, verdict);
        // Keep the accumulator's capacity for the next frame instead of
        // reallocating from zero.
        self.acc = body;
        self.acc.clear();
    }

    /// Sort one delineated body into a delivery or an error counter —
    /// the validation tail of the Control unit, shared verbatim by the
    /// staged pipeline and the fused fast path.
    pub(crate) fn classify(
        &mut self,
        body: &[u8],
        abort: bool,
        overrun: bool,
        verdict: Option<bool>,
    ) {
        if abort {
            self.counters.aborts += 1;
            return;
        }
        if overrun {
            self.counters.giants += 1;
            return;
        }
        let fcs_len = self.fcs.len();
        if body.len() < fcs_len.max(1) {
            self.counters.runts += 1;
            return;
        }
        if verdict == Some(false) {
            self.counters.fcs_errors += 1;
            return;
        }
        let body = &body[..body.len() - fcs_len];
        // Header: address, control, protocol (2-byte form — the datapath
        // leaves PFC to the host, as the paper's datapath does).
        if body.len() < 4 {
            self.counters.runts += 1;
            return;
        }
        let (addr, ctrl) = (body[0], body[1]);
        // The all-stations address 0xFF is always accepted (PPP default
        // and MAPOS broadcast), alongside the programmed station address.
        if addr != self.address && addr != 0xFF && !self.promiscuous {
            self.counters.address_mismatches += 1;
            return;
        }
        if ctrl != 0x03 {
            self.counters.header_errors += 1;
            return;
        }
        let protocol = u16::from_be_bytes([body[2], body[3]]);
        if protocol & 1 == 0 {
            self.counters.header_errors += 1;
            return;
        }
        self.counters.frames_ok += 1;
        self.stats.bytes_out += (body.len() - 4) as u64;
        self.stats.words_out += 1;
        let mut payload = self.pool.lease_vec();
        payload.extend_from_slice(&body[4..]);
        self.out.push_back(ReceivedFrame {
            address: addr,
            control: ctrl,
            protocol,
            payload,
        });
    }

    /// Hand a delivered payload's storage back for reuse.
    pub fn recycle_payload(&mut self, payload: Vec<u8>) {
        self.pool.recycle_vec(payload);
    }
}

/// The complete receiver: three stages plus inter-stage registers.
#[derive(Debug)]
pub struct RxPipeline {
    pub escape: EscapeDetect,
    pub crc: RxCrc,
    pub control: RxControl,
    latch_esc_crc: Option<Word>,
    latch_crc_ctl: Option<Word>,
    pub cycles: u64,
}

impl RxPipeline {
    pub fn new(width: usize, address: u8, fcs: FcsMode, max_body: usize) -> Self {
        Self {
            escape: EscapeDetect::new(width, EscapeDetect::default_capacity(width)),
            crc: RxCrc::new(width, fcs),
            control: RxControl::new(fcs, address, max_body),
            latch_esc_crc: None,
            latch_crc_ctl: None,
            cycles: 0,
        }
    }

    /// Can the receiver absorb one more wire word this cycle?
    pub fn ready(&self) -> bool {
        self.escape.ready()
    }

    pub fn idle(&self) -> bool {
        self.escape.idle()
            && self.crc.idle()
            && self.control.idle()
            && self.latch_esc_crc.is_none()
            && self.latch_crc_ctl.is_none()
    }

    pub fn take_frames(&mut self) -> Vec<ReceivedFrame> {
        self.control.take_frames()
    }

    pub fn counters(&self) -> &RxCounters {
        &self.control.counters
    }

    /// One clock with an optional incoming wire word.
    pub fn clock(&mut self, wire: Option<Word>) {
        self.cycles += 1;
        // Idle fast path: no wire word and nothing in flight anywhere.
        // Bumps exactly the counters the full sweep below would (each
        // stage's cycle count, plus the escape unit's bubble — its
        // stager pops nothing) and touches nothing else.
        if wire.is_none()
            && self.latch_esc_crc.is_none()
            && self.latch_crc_ctl.is_none()
            && self.escape.idle()
            && self.crc.idle()
        {
            self.control.stats.cycles += 1;
            self.crc.stats.cycles += 1;
            self.escape.stats.cycles += 1;
            self.escape.stats.bubble_cycles += 1;
            return;
        }
        // Sink → source.
        self.control.clock(self.latch_crc_ctl.take());
        let crc_out_ready = self.latch_crc_ctl.is_none();
        let crc_in = if self.crc.ready() {
            self.latch_esc_crc.take()
        } else {
            if self.latch_esc_crc.is_some() {
                self.crc.stats.stall_cycles += 1;
            }
            None
        };
        if let Some(w) = self.crc.clock(crc_in, crc_out_ready) {
            self.latch_crc_ctl = Some(w);
        }
        let esc_out_ready = self.latch_esc_crc.is_none();
        if !self.escape.ready() && wire.is_some() {
            self.escape.stats.stall_cycles += 1;
        }
        if let Some(w) = self.escape.clock(wire, esc_out_ready) {
            self.latch_esc_crc = Some(w);
        }
    }
}

impl p5_stream::Observable for RxPipeline {
    /// Whole-receiver view: delivery/defect counters, the destuffer's
    /// wire-level tallies, and per-unit flow stats under prefixed names.
    fn snapshot(&self) -> p5_stream::Snapshot {
        let mut s = p5_stream::Snapshot::new("rx-pipeline")
            .counter("cycles", self.cycles)
            .counter("frames_delineated", self.escape.frames_delineated)
            .counter("escapes_removed", self.escape.escapes_removed)
            .counter("idle_flags", self.escape.idle_flags);
        s.absorb(&self.control.counters.snapshot());
        for (prefix, stats) in [
            ("escape", &self.escape.stats),
            ("crc", &self.crc.stats),
            ("control", &self.control.stats),
        ] {
            for (name, value) in &stats.snapshot(prefix).counters {
                s.push_counter(format!("{prefix}_{name}"), *value);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed wire bytes into the receiver width bytes per cycle; drain.
    fn receive(width: usize, wire: &[u8]) -> (Vec<ReceivedFrame>, RxCounters) {
        let mut rx = RxPipeline::new(width, 0xFF, FcsMode::Fcs32, 4096);
        let mut frames = Vec::new();
        let mut chunks = wire.chunks(width);
        let mut budget = 10 * wire.len() + 100;
        loop {
            let input = if rx.ready() { chunks.next() } else { None };
            let done_feeding = input.is_none() && chunks.len() == 0;
            rx.clock(input.map(Word::data));
            frames.extend(rx.take_frames());
            budget -= 1;
            assert!(budget > 0, "receiver did not drain");
            if done_feeding && rx.idle() {
                break;
            }
        }
        (frames, rx.control.counters)
    }

    fn wire_for(payloads: &[&[u8]]) -> Vec<u8> {
        let mut framer = p5_hdlc::Framer::new(p5_hdlc::FramerConfig::default());
        let mut wire = Vec::new();
        for p in payloads {
            let mut body = vec![0xFF, 0x03, 0x00, 0x21];
            body.extend_from_slice(p);
            framer.encode_into(&body, &mut wire);
        }
        wire
    }

    #[test]
    fn receives_a_simple_frame_w32() {
        let wire = wire_for(&[b"hello receiver"]);
        let (frames, c) = receive(4, &wire);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload, b"hello receiver");
        assert_eq!(frames[0].protocol, 0x0021);
        assert_eq!(c.frames_ok, 1);
    }

    #[test]
    fn receives_a_simple_frame_w8() {
        let wire = wire_for(&[b"byte wide"]);
        let (frames, _) = receive(1, &wire);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload, b"byte wide");
    }

    #[test]
    fn figure6_case_escape_spanning_words() {
        // Escapes everywhere, including straddling word boundaries.
        let payload: Vec<u8> = vec![0x7E, 0x11, 0x7D, 0x22, 0x7E, 0x7E, 0x7D, 0x33];
        let wire = wire_for(&[&payload]);
        let (frames, c) = receive(4, &wire);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload, payload);
        assert_eq!(c.fcs_errors, 0);
    }

    #[test]
    fn multiple_frames_with_idle_fill() {
        let mut wire = vec![0x7E; 10];
        wire.extend(wire_for(&[b"one", b"two", b"three"]));
        wire.extend(vec![0x7E; 7]);
        let (frames, c) = receive(4, &wire);
        assert_eq!(frames.len(), 3);
        assert_eq!(c.frames_ok, 3);
        assert_eq!(frames[2].payload, b"three");
    }

    #[test]
    fn corrupted_byte_counts_fcs_error() {
        let mut wire = wire_for(&[b"will be corrupted"]);
        wire[6] ^= 0x04;
        let (frames, c) = receive(4, &wire);
        assert!(frames.is_empty());
        assert_eq!(c.fcs_errors, 1);
    }

    #[test]
    fn abort_sequence_counts_abort() {
        let wire = vec![FLAG, 0x41, 0x42, 0x43, ESCAPE, FLAG];
        let (frames, c) = receive(4, &wire);
        assert!(frames.is_empty());
        assert_eq!(c.aborts, 1);
    }

    #[test]
    fn runt_counts() {
        let wire = vec![FLAG, 0x41, 0x42, FLAG];
        let (_, c) = receive(4, &wire);
        assert_eq!(c.runts, 1);
    }

    #[test]
    fn giant_counts_and_is_bounded() {
        let big = vec![0xAB; 3000];
        let wire = wire_for(&[&big]);
        let mut rx = RxPipeline::new(4, 0xFF, FcsMode::Fcs32, 1504);
        for chunk in wire.chunks(4) {
            while !rx.ready() {
                rx.clock(None);
            }
            rx.clock(Some(Word::data(chunk)));
        }
        for _ in 0..100 {
            rx.clock(None);
        }
        assert_eq!(rx.counters().giants, 1);
    }

    #[test]
    fn address_filtering_and_promiscuous() {
        // Frame addressed to MAPOS station 0x03.
        let mut framer = p5_hdlc::Framer::new(p5_hdlc::FramerConfig::default());
        let mut wire = Vec::new();
        framer.encode_into(&[0x03, 0x03, 0x00, 0x21, 0xAA], &mut wire);

        let (frames, c) = receive(4, &wire); // we are 0xFF
        assert!(frames.is_empty());
        assert_eq!(c.address_mismatches, 1);

        let mut rx = RxPipeline::new(4, 0xFF, FcsMode::Fcs32, 4096);
        rx.control.promiscuous = true;
        for chunk in wire.chunks(4) {
            rx.clock(Some(Word::data(chunk)));
        }
        for _ in 0..50 {
            rx.clock(None);
        }
        let frames = rx.take_frames();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].address, 0x03);
    }

    #[test]
    fn bad_control_and_bad_protocol_count_header_errors() {
        let mut framer = p5_hdlc::Framer::new(p5_hdlc::FramerConfig::default());
        let mut wire = Vec::new();
        framer.encode_into(&[0xFF, 0x13, 0x00, 0x21, 0xAA], &mut wire); // bad ctrl
        framer.encode_into(&[0xFF, 0x03, 0x00, 0x20, 0xAA], &mut wire); // even proto
        let (frames, c) = receive(4, &wire);
        assert!(frames.is_empty());
        assert_eq!(c.header_errors, 2);
    }

    #[test]
    fn recovery_after_abort() {
        let mut wire = vec![FLAG, 0x11, 0x22, ESCAPE, FLAG];
        wire.extend(wire_for(&[b"good"]));
        let (frames, c) = receive(4, &wire);
        assert_eq!(c.aborts, 1);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload, b"good");
    }

    #[test]
    fn detect_fill_latency_is_4_cycles_at_w32() {
        let mut esc = EscapeDetect::new(4, EscapeDetect::default_capacity(4));
        let w = Word::data(&[FLAG, 1, 2, 3]);
        let mut first = None;
        for cycle in 1..=10 {
            let input = if cycle == 1 {
                Some(w)
            } else if cycle == 2 {
                Some(Word::data(&[4, FLAG, FLAG, FLAG]))
            } else {
                None
            };
            if let Some(out) = esc.clock(input, true) {
                first = Some((cycle, out));
                break;
            }
        }
        let (cycle, out) = first.expect("no output");
        assert_eq!(cycle, 5, "4-stage pipe + 1 cycle to complete the word");
        assert_eq!(out.lanes(), &[1, 2, 3, 4]);
        assert!(out.sof && out.eof);
    }

    #[test]
    fn escapes_removed_counter() {
        let wire = wire_for(&[&[0x7E, 0x7D, 0x00][..]]);
        let mut rx = RxPipeline::new(4, 0xFF, FcsMode::Fcs32, 4096);
        for chunk in wire.chunks(4) {
            rx.clock(Some(Word::data(chunk)));
        }
        for _ in 0..50 {
            rx.clock(None);
        }
        assert_eq!(rx.escape.escapes_removed, 2);
        assert_eq!(rx.take_frames().len(), 1);
    }

    #[test]
    fn control_skips_accumulation_while_out_of_sync() {
        // Words that arrive without a SOF (receiver reset mid-frame,
        // upstream error recovery) must not be reassembled into a
        // phantom frame: the control unit hunts for the next SOF and
        // discards the stragglers.
        let mut ctl = RxControl::new(FcsMode::Fcs32, 0xFF, 4096);
        // A mid-frame tail with no SOF, closed by an EOF.
        ctl.clock(Some(Word::data(&[0xAA, 0xBB, 0xCC, 0xDD])));
        let mut tail = Word::data(&[0xEE, 0xFF]);
        tail.eof = true;
        tail.crc_ok = Some(true);
        ctl.clock(Some(tail));
        assert!(ctl.take_frames().is_empty(), "no phantom delivery");
        assert_eq!(ctl.resync_bytes_skipped, 6);
        assert_eq!(ctl.counters.runts, 1, "the hunt window closes as a runt");
        // The next properly-delineated frame is received normally.
        let mut body = vec![0xFF, 0x03, 0x00, 0x21, 0x42];
        let mut crc = p5_crc::Slice8Engine::new(p5_crc::FCS32);
        crc.update(&body);
        body.extend_from_slice(&p5_crc::fcs32_wire_bytes(crc.value()));
        let mut chunks = body.chunks(4).peekable();
        let mut first = true;
        while let Some(c) = chunks.next() {
            let mut w = Word::data(c);
            w.sof = first;
            first = false;
            if chunks.peek().is_none() {
                w.eof = true;
                w.crc_ok = Some(true);
            }
            ctl.clock(Some(w));
        }
        let got = ctl.take_frames();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, vec![0x42]);
        assert_eq!(ctl.counters.frames_ok, 1);
    }
}
