//! The P⁵ transmitter (Figure 3): Control/Data-path → CRC → Escape
//! Generate, each a registered pipeline stage with ready/valid
//! handshakes and the backpressure scheme of the paper.

use crate::delay::DelayLine;
use crate::stager::ByteStager;
use crate::stats::StageStats;
use crate::word::Word;
use p5_crc::{CrcEngine, CrcParams, EngineKind, FcsEngine, FCS16, FCS32};
use p5_hdlc::{FcsMode, ESCAPE, ESCAPE_XOR, FLAG};
use p5_stream::BufPool;
use std::collections::VecDeque;

/// A frame awaiting transmission in shared memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxDescriptor {
    /// PPP protocol number (2-byte form).
    pub protocol: u16,
    /// The network-layer datagram.
    pub payload: Vec<u8>,
}

/// The shared-memory transmit queue was full; the descriptor is handed
/// back so the host can retry once the queue drains — this is the
/// host-facing face of the pipeline's backpressure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxQueueFull(pub TxDescriptor);

impl std::fmt::Display for TxQueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transmit queue full (frame of {} bytes refused)",
            self.0.payload.len()
        )
    }
}

impl std::error::Error for TxQueueFull {}

/// Transmit control unit: fetches descriptors from shared memory,
/// prepends the (programmable) address, control and protocol fields, and
/// streams the frame body one word per clock.
#[derive(Debug)]
pub struct TxControl {
    width: usize,
    /// Shared-memory transmit queue.
    queue: VecDeque<TxDescriptor>,
    /// Frame being streamed: (body bytes, next position).
    cur: Option<(Vec<u8>, usize)>,
    /// Programmable station address (OAM register; 0xFF default, other
    /// values for MAPOS).
    pub address: u8,
    /// Shared-memory queue bound: descriptors beyond this are refused
    /// (configurable; the hardware queue is a fixed BRAM).
    pub queue_depth: usize,
    /// Complete frames streamed out.
    pub frames_sent: u64,
    /// Descriptors refused because the queue was full.
    pub submit_rejects: u64,
    /// Recycled body/payload storage (shared with the device pool via
    /// [`TxControl::set_pool`]).
    pool: BufPool,
    pub stats: StageStats,
}

impl TxControl {
    /// Default shared-memory queue bound.
    pub const DEFAULT_QUEUE_DEPTH: usize = 512;

    pub fn new(width: usize, address: u8) -> Self {
        Self {
            width,
            queue: VecDeque::new(),
            cur: None,
            address,
            queue_depth: Self::DEFAULT_QUEUE_DEPTH,
            frames_sent: 0,
            submit_rejects: 0,
            pool: BufPool::new(),
            stats: StageStats::default(),
        }
    }

    /// Share frame-body storage with a device-wide buffer pool.
    pub fn set_pool(&mut self, pool: BufPool) {
        self.pool = pool;
    }

    /// Lease recycled storage for a submit payload (the zero-copy
    /// producer path: fill this, wrap it in a [`TxDescriptor`], and the
    /// storage comes back to the pool once the frame is streamed).
    pub fn lease_buf(&self) -> Vec<u8> {
        self.pool.lease_vec()
    }

    /// Queue a descriptor, or refuse it (handing it back) when the
    /// shared-memory queue is at its configured depth.
    pub fn submit(&mut self, desc: TxDescriptor) -> Result<(), TxQueueFull> {
        if self.queue.len() >= self.queue_depth {
            self.submit_rejects += 1;
            self.stats.rejects += 1;
            return Err(TxQueueFull(desc));
        }
        self.queue.push_back(desc);
        Ok(())
    }

    /// Descriptor slots still free in the shared-memory queue.
    pub fn queue_free(&self) -> usize {
        self.queue_depth.saturating_sub(self.queue.len())
    }

    pub fn pending_frames(&self) -> usize {
        self.queue.len() + usize::from(self.cur.is_some())
    }

    pub fn idle(&self) -> bool {
        self.queue.is_empty() && self.cur.is_none()
    }

    /// One clock: emit the next word of the current frame if the
    /// downstream latch is free.
    pub fn clock(&mut self, out_ready: bool) -> Option<Word> {
        self.stats.cycles += 1;
        if !out_ready {
            return None;
        }
        let (body, pos) = match &mut self.cur {
            Some(cur) => cur,
            cur @ None => {
                let desc = self.queue.pop_front()?;
                let mut body = self.pool.lease_vec();
                body.reserve(desc.payload.len() + 4);
                body.push(self.address);
                body.push(0x03); // UI control field
                body.extend_from_slice(&desc.protocol.to_be_bytes());
                body.extend_from_slice(&desc.payload);
                self.pool.recycle_vec(desc.payload);
                cur.insert((body, 0))
            }
        };
        let take = self.width.min(body.len() - *pos);
        let mut w = Word::data(&body[*pos..*pos + take]);
        w.sof = *pos == 0;
        *pos += take;
        if *pos == body.len() {
            w.eof = true;
            if let Some((storage, _)) = self.cur.take() {
                self.pool.recycle_vec(storage);
            }
            self.frames_sent += 1;
        }
        self.stats.words_out += 1;
        self.stats.bytes_out += take as u64;
        Some(w)
    }
}

/// CRC unit: computes the FCS with the parallel matrix engine
/// (8×32 for the 8-bit P⁵, 32×32 for the 32-bit one) while the frame
/// streams through, then appends the complemented FCS after the last
/// body word — repacking across word boundaries via a small stager.
#[derive(Debug)]
pub struct TxCrc {
    width: usize,
    fcs: FcsMode,
    engine: Option<FcsEngine>,
    stager: ByteStager,
    pub stats: StageStats,
}

/// The FCS parameter set a [`FcsMode`] selects (`None` for no FCS).
pub(crate) fn fcs_params(fcs: FcsMode) -> Option<CrcParams> {
    match fcs {
        FcsMode::None => None,
        FcsMode::Fcs16 => Some(FCS16),
        FcsMode::Fcs32 => Some(FCS32),
    }
}

impl TxCrc {
    pub fn new(width: usize, fcs: FcsMode) -> Self {
        Self::with_engine_kind(width, fcs, EngineKind::default())
    }

    /// Select the CRC realisation: [`EngineKind::Slice`] (the default)
    /// for speed, [`EngineKind::Matrix`] to exercise the paper's
    /// gate-model walk.  Byte-for-byte equivalent either way.
    pub fn with_engine_kind(width: usize, fcs: FcsMode, kind: EngineKind) -> Self {
        let engine = fcs_params(fcs).map(|p| FcsEngine::new(kind, p, width));
        Self {
            width,
            fcs,
            engine,
            // Must hold a word in flight plus a full FCS appended at eof.
            stager: ByteStager::new(4 * width + 8),
            stats: StageStats::default(),
        }
    }

    /// Which realisation is currently computing the FCS (`None` when
    /// the mode carries no FCS at all).
    pub fn engine_kind(&self) -> Option<EngineKind> {
        self.engine.as_ref().map(|e| e.kind())
    }

    /// Can accept one input word next clock (worst case it stages
    /// `width` body bytes plus the whole FCS).
    pub fn ready(&self) -> bool {
        self.stager.free() >= self.width + self.fcs.len()
    }

    pub fn idle(&self) -> bool {
        self.stager.is_empty()
    }

    pub fn clock(&mut self, input: Option<Word>, out_ready: bool) -> Option<Word> {
        self.stats.cycles += 1;
        if let Some(w) = input {
            self.stats.words_in += 1;
            if w.sof {
                if let Some(e) = &mut self.engine {
                    e.reset();
                }
            }
            if let Some(e) = &mut self.engine {
                e.update_word(w.lanes());
            }
            // Steady-state fast path: a full mid-frame word entering an
            // empty stager leaves it again this very cycle, so skip the
            // stage-and-repack round trip.  Cycle- and byte-exact: the
            // slow path below would push `width` bytes (occupancy
            // `width`) and pop the identical word.
            if out_ready
                && w.len as usize == self.width
                && !w.eof
                && !w.abort
                && w.crc_ok.is_none()
                && self.stager.is_empty()
            {
                self.stats.note_occupancy(self.width);
                self.stats.words_out += 1;
                self.stats.bytes_out += w.len as u64;
                return Some(w);
            }
            for (i, &b) in w.lanes().iter().enumerate() {
                let last = i + 1 == w.len as usize;
                // eof moves to the final FCS byte below.
                let eof_here = w.eof && last && self.fcs.is_none();
                self.stager.push_byte(b, w.sof && i == 0, eof_here);
            }
            if w.eof {
                match (&self.engine, self.fcs) {
                    (Some(e), FcsMode::Fcs32) => {
                        let fcs = p5_crc::fcs32_wire_bytes(e.value());
                        for (i, &b) in fcs.iter().enumerate() {
                            self.stager.push_byte(b, false, i == 3);
                        }
                    }
                    (Some(e), FcsMode::Fcs16) => {
                        let fcs = p5_crc::fcs16_wire_bytes(e.value() as u16);
                        for (i, &b) in fcs.iter().enumerate() {
                            self.stager.push_byte(b, false, i == 1);
                        }
                    }
                    _ => {}
                }
            }
            self.stats.note_occupancy(self.stager.occupancy());
        }
        if !out_ready {
            return None;
        }
        let out = self.stager.pop_word(self.width, false);
        if let Some(w) = &out {
            self.stats.words_out += 1;
            self.stats.bytes_out += w.len as u64;
        }
        out
    }
}

/// The Escape Generate unit — the paper's Figure 5 problem.
///
/// Each input word is scanned for flag/escape characters; matches expand
/// to two bytes, so a 4-byte word can become 8 wire bytes.  The expanded
/// bytes land in the resynchronisation buffer (the byte sorter), from
/// which full wire words are re-launched.  When the buffer cannot absorb
/// a worst-case word, `ready()` deasserts — that is the backpressure
/// scheme.  Output passes through a delay line modelling the 4-stage
/// pipelining of the 32-bit unit ("the first data transmitted is
/// therefore delayed by 4 clock cycles").
#[derive(Debug)]
pub struct EscapeGen {
    width: usize,
    staging: VecDeque<u8>,
    capacity: usize,
    /// Last byte pushed was a flag — enables flag sharing between
    /// back-to-back frames.
    last_was_flag: bool,
    /// Pipeline delay line (length = stages − 1).
    delay: DelayLine,
    /// Transmit idle flags when the buffer runs dry (continuous wire).
    pub idle_fill: bool,
    /// Abort requested: emit `7D 7E` and drop the frame in flight.
    abort_requested: bool,
    pub stats: StageStats,
    /// Cycles with backpressure asserted.
    pub backpressure_cycles: u64,
    /// Escape characters inserted.
    pub escapes_inserted: u64,
    /// Frames fully stuffed (closing flag pushed into the buffer).
    pub frames_stuffed: u64,
}

impl EscapeGen {
    /// Pipeline depth by datapath width: the 8-bit unit processes in one
    /// stage; the 32-bit unit is "divided up into 4 pipelined stages".
    pub fn pipe_stages(width: usize) -> usize {
        if width >= 4 {
            4
        } else {
            1
        }
    }

    pub fn new(width: usize, buffer_capacity: usize) -> Self {
        // Minimum: a worst-case expansion (2·width) plus opening flag,
        // on top of up to width−1 residue bytes that can sit in the
        // buffer mid-frame (found by the buffer-depth ablation: anything
        // smaller deadlocks the ready/valid handshake).
        assert!(
            buffer_capacity > 3 * width,
            "resynchronisation buffer below the 3w+1 minimum"
        );
        let stages = Self::pipe_stages(width);
        Self {
            width,
            staging: VecDeque::with_capacity(buffer_capacity),
            capacity: buffer_capacity,
            last_was_flag: false,
            delay: DelayLine::new(stages - 1),
            idle_fill: false,
            abort_requested: false,
            stats: StageStats::default(),
            backpressure_cycles: 0,
            escapes_inserted: 0,
            frames_stuffed: 0,
        }
    }

    /// Default resynchronisation-buffer capacity ("extremely low").
    pub fn default_capacity(width: usize) -> usize {
        4 * width
    }

    pub fn occupancy(&self) -> usize {
        self.staging.len()
    }

    /// Backpressure: can the buffer absorb a worst-case expansion of one
    /// more word (all lanes escaped, plus an opening flag)?
    pub fn ready(&self) -> bool {
        self.capacity - self.staging.len() >= 2 * self.width + 2
    }

    pub fn idle(&self) -> bool {
        self.staging.is_empty() && self.delay.is_clear()
    }

    /// Was the last octet that left this unit a flag?  The fused fast
    /// path reads this to decide whether its frame shares the previous
    /// closing flag, and writes it back after emitting its own.
    pub(crate) fn last_was_flag(&self) -> bool {
        self.last_was_flag
    }

    pub(crate) fn set_last_was_flag(&mut self, v: bool) {
        self.last_was_flag = v;
    }

    fn push(&mut self, b: u8, is_flag: bool) {
        debug_assert!(self.staging.len() < self.capacity, "staging overflow");
        self.staging.push_back(b);
        self.last_was_flag = is_flag;
    }

    /// Request a transmit abort: the bytes still staged are dropped and
    /// the RFC 1662 abort sequence `7D 7E` goes on the wire, telling the
    /// far end to discard the frame in progress (underrun / host cancel).
    pub fn abort_frame(&mut self) {
        self.abort_requested = true;
    }

    /// One clock.  `drain` signals that upstream is idle, permitting a
    /// final partial word (and is what lets simulations terminate — the
    /// real wire never stops).
    pub fn clock(&mut self, input: Option<Word>, out_ready: bool, drain: bool) -> Option<Word> {
        self.stats.cycles += 1;
        if !self.ready() {
            self.backpressure_cycles += 1;
        }
        if std::mem::take(&mut self.abort_requested) {
            self.staging.clear();
            self.push(ESCAPE, false);
            self.push(FLAG, true);
        }
        let mut fast = None;
        if let Some(w) = input {
            self.stats.words_in += 1;
            if w.sof && !self.last_was_flag {
                self.push(FLAG, true);
            }
            // One scan decides the common case: a word with nothing to
            // escape skips the branch-per-byte sorter entirely.
            let lanes = w.lanes();
            let clean = !lanes.is_empty() && lanes.iter().all(|&b| b != FLAG && b != ESCAPE);
            if clean && out_ready && lanes.len() == self.width && self.staging.len() < self.width {
                // Direct assembly: the k residue bytes head the output
                // word, the input fills the rest, and only the k
                // leftover input bytes touch the ring — byte- and
                // cycle-exact with staging everything and popping below.
                let k = self.staging.len();
                self.stats
                    .note_occupancy(k + self.width + usize::from(w.eof));
                let mut out_w = Word::default();
                for lane in 0..k {
                    out_w.bytes[lane] = self.staging.pop_front().unwrap();
                }
                out_w.bytes[k..self.width].copy_from_slice(&lanes[..self.width - k]);
                out_w.len = self.width as u8;
                self.staging.extend(lanes[self.width - k..].iter().copied());
                self.last_was_flag = false;
                if w.eof {
                    self.push(FLAG, true);
                    self.frames_stuffed += 1;
                }
                fast = Some(out_w);
            } else {
                if clean {
                    debug_assert!(self.staging.len() + lanes.len() <= self.capacity);
                    self.staging.extend(lanes.iter().copied());
                    self.last_was_flag = false;
                } else {
                    for &b in lanes {
                        if b == FLAG || b == ESCAPE {
                            self.push(ESCAPE, false);
                            self.push(b ^ ESCAPE_XOR, false);
                            self.escapes_inserted += 1;
                        } else {
                            self.push(b, false);
                        }
                    }
                }
                if w.eof {
                    self.push(FLAG, true);
                    self.frames_stuffed += 1;
                }
                self.stats.note_occupancy(self.staging.len());
            }
        }
        if !out_ready {
            // Clock-enable gating: downstream stall freezes the pipe.
            return None;
        }
        // Assemble the next wire word from the resynchronisation buffer.
        let fresh = if fast.is_some() {
            fast
        } else if self.staging.len() >= self.width {
            let mut w = Word::default();
            for (lane, b) in self.staging.drain(..self.width).enumerate() {
                w.bytes[lane] = b;
                w.len = (lane + 1) as u8;
            }
            Some(w)
        } else if self.idle_fill {
            // Pad to a full word with idle flags (continuous line).
            let mut w = Word::default();
            for lane in 0..self.width {
                w.bytes[lane] = self.staging.pop_front().unwrap_or(FLAG);
                w.len = (lane + 1) as u8;
            }
            self.last_was_flag = true;
            Some(w)
        } else if drain && !self.staging.is_empty() {
            let mut w = Word::default();
            for (lane, b) in self.staging.drain(..).enumerate() {
                w.bytes[lane] = b;
                w.len = (lane + 1) as u8;
            }
            Some(w)
        } else {
            self.stats.bubble_cycles += 1;
            None
        };
        // March through the pipeline delay line.
        let out = self.delay.shift(fresh);
        if let Some(w) = &out {
            self.stats.words_out += 1;
            self.stats.bytes_out += w.len as u64;
        }
        out
    }
}

/// The complete transmitter: the three stages plus the inter-stage
/// registers, clocked as one unit.
#[derive(Debug)]
pub struct TxPipeline {
    pub control: TxControl,
    pub crc: TxCrc,
    pub escape: EscapeGen,
    latch_ctl_crc: Option<Word>,
    latch_crc_esc: Option<Word>,
    pub cycles: u64,
}

impl TxPipeline {
    pub fn new(width: usize, address: u8, fcs: FcsMode) -> Self {
        Self {
            control: TxControl::new(width, address),
            crc: TxCrc::new(width, fcs),
            escape: EscapeGen::new(width, EscapeGen::default_capacity(width)),
            latch_ctl_crc: None,
            latch_crc_esc: None,
            cycles: 0,
        }
    }

    pub fn submit(&mut self, desc: TxDescriptor) -> Result<(), TxQueueFull> {
        self.control.submit(desc)
    }

    /// The frame *sources* (control + CRC and the latches between them)
    /// have drained; only the escape unit may still hold wire bytes.  In
    /// `idle_fill` mode the escape unit never idles (the line is
    /// continuous), so this is the termination condition driver loops use.
    pub fn source_idle(&self) -> bool {
        self.control.idle()
            && self.crc.idle()
            && self.latch_ctl_crc.is_none()
            && self.latch_crc_esc.is_none()
    }

    /// Drop the inter-stage latches (test hook for abort scenarios —
    /// hardware clears the same registers on an abort strobe).
    pub fn latch_flush_for_test(&mut self) {
        self.latch_ctl_crc = None;
        self.latch_crc_esc = None;
    }

    pub fn idle(&self) -> bool {
        self.control.idle()
            && self.crc.idle()
            && self.escape.idle()
            && self.latch_ctl_crc.is_none()
            && self.latch_crc_esc.is_none()
    }

    /// One clock of the whole transmitter; returns the wire word leaving
    /// the Escape Generate unit, if any.
    pub fn clock(&mut self, phy_ready: bool) -> Option<Word> {
        self.cycles += 1;
        // Evaluate sink → source so ready flows back combinationally.
        let upstream_idle = self.control.idle() && self.crc.idle() && self.latch_ctl_crc.is_none();
        let esc_in = if self.escape.ready() {
            self.latch_crc_esc.take()
        } else {
            if self.latch_crc_esc.is_some() {
                self.escape.stats.stall_cycles += 1;
            }
            None
        };
        let drain = upstream_idle && self.latch_crc_esc.is_none();
        let wire = self.escape.clock(esc_in, phy_ready, drain);

        let crc_out_ready = self.latch_crc_esc.is_none();
        let crc_in = if self.crc.ready() {
            self.latch_ctl_crc.take()
        } else {
            if self.latch_ctl_crc.is_some() {
                self.crc.stats.stall_cycles += 1;
            }
            None
        };
        if let Some(w) = self.crc.clock(crc_in, crc_out_ready) {
            debug_assert!(self.latch_crc_esc.is_none());
            self.latch_crc_esc = Some(w);
        }

        let ctl_out_ready = self.latch_ctl_crc.is_none();
        if let Some(w) = self.control.clock(ctl_out_ready) {
            self.latch_ctl_crc = Some(w);
        }
        wire
    }
}

impl p5_stream::Observable for TxPipeline {
    /// Whole-transmitter view: frame/stuffing tallies plus per-unit flow
    /// stats under prefixed names.
    fn snapshot(&self) -> p5_stream::Snapshot {
        let mut s = p5_stream::Snapshot::new("tx-pipeline")
            .counter("cycles", self.cycles)
            .counter("frames_sent", self.control.frames_sent)
            .counter("submit_rejects", self.control.submit_rejects)
            .counter("frames_stuffed", self.escape.frames_stuffed)
            .counter("escapes_inserted", self.escape.escapes_inserted)
            .counter("backpressure_cycles", self.escape.backpressure_cycles);
        for (prefix, stats) in [
            ("control", &self.control.stats),
            ("crc", &self.crc.stats),
            ("escape", &self.escape.stats),
        ] {
            for (name, value) in &stats.snapshot(prefix).counters {
                s.push_counter(format!("{prefix}_{name}"), *value);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_wire(width: usize, frames: &[TxDescriptor]) -> Vec<u8> {
        let mut tx = TxPipeline::new(width, 0xFF, FcsMode::Fcs32);
        for f in frames {
            tx.submit(f.clone()).unwrap();
        }
        let mut wire = Vec::new();
        for _ in 0..200_000 {
            if let Some(w) = tx.clock(true) {
                wire.extend_from_slice(w.lanes());
            }
            if tx.idle() {
                break;
            }
        }
        assert!(tx.idle(), "transmitter did not drain");
        wire
    }

    fn behavioral_wire(frames: &[TxDescriptor]) -> Vec<u8> {
        let mut framer = p5_hdlc::Framer::new(p5_hdlc::FramerConfig::default());
        let mut wire = Vec::new();
        for f in frames {
            let mut body = vec![0xFF, 0x03];
            body.extend_from_slice(&f.protocol.to_be_bytes());
            body.extend_from_slice(&f.payload);
            framer.encode_into(&body, &mut wire);
        }
        wire
    }

    #[test]
    fn single_frame_matches_golden_model_w32() {
        let frames = vec![TxDescriptor {
            protocol: 0x0021,
            payload: b"hello gigabit sonet world".to_vec(),
        }];
        assert_eq!(run_to_wire(4, &frames), behavioral_wire(&frames));
    }

    #[test]
    fn single_frame_matches_golden_model_w8() {
        let frames = vec![TxDescriptor {
            protocol: 0x0021,
            payload: b"625 megabit baseline".to_vec(),
        }];
        assert_eq!(run_to_wire(1, &frames), behavioral_wire(&frames));
    }

    #[test]
    fn flaggy_payload_matches_golden_model() {
        let frames = vec![TxDescriptor {
            protocol: 0x0021,
            payload: vec![0x7E, 0x7D, 0x7E, 0x7E, 0x31, 0x33, 0x7E, 0x96],
        }];
        assert_eq!(run_to_wire(4, &frames), behavioral_wire(&frames));
    }

    #[test]
    fn worst_case_all_flags_matches_and_backpressures() {
        let frames = vec![TxDescriptor {
            protocol: 0x0021,
            payload: vec![0x7E; 256],
        }];
        let mut tx = TxPipeline::new(4, 0xFF, FcsMode::Fcs32);
        tx.submit(frames[0].clone()).unwrap();
        let mut wire = Vec::new();
        while !tx.idle() {
            if let Some(w) = tx.clock(true) {
                wire.extend_from_slice(w.lanes());
            }
        }
        assert_eq!(wire, behavioral_wire(&frames));
        // Doubling payload must have exerted backpressure on the input.
        assert!(tx.escape.backpressure_cycles > 0);
        assert!(tx.escape.stats.stall_cycles > 0);
    }

    #[test]
    fn back_to_back_frames_share_flags() {
        let frames = vec![
            TxDescriptor {
                protocol: 0x0021,
                payload: b"frame one".to_vec(),
            },
            TxDescriptor {
                protocol: 0x0057,
                payload: b"frame two".to_vec(),
            },
        ];
        assert_eq!(run_to_wire(4, &frames), behavioral_wire(&frames));
    }

    #[test]
    fn escape_gen_fill_latency_is_4_cycles_at_w32() {
        let mut esc = EscapeGen::new(4, EscapeGen::default_capacity(4));
        let w = Word::data(&[1, 2, 3, 4]).with_sof();
        // Cycle 1: word enters (adds a leading flag, 5 staged bytes).
        let mut first_out = None;
        for cycle in 1..=10 {
            let input = if cycle == 1 { Some(w) } else { None };
            if let Some(out) = esc.clock(input, true, true) {
                first_out = Some((cycle, out));
                break;
            }
        }
        let (cycle, out) = first_out.expect("no output");
        assert_eq!(cycle, 4, "paper: first data delayed by 4 clock cycles");
        assert_eq!(out.lanes(), &[FLAG, 1, 2, 3]);
    }

    #[test]
    fn escape_gen_latency_is_1_cycle_at_w8() {
        let mut esc = EscapeGen::new(1, EscapeGen::default_capacity(1));
        let w = Word::data(&[0x42]).with_sof();
        let out = esc.clock(Some(w), true, true);
        assert_eq!(out.unwrap().lanes(), &[FLAG]);
    }

    #[test]
    fn idle_fill_emits_flag_words() {
        let mut esc = EscapeGen::new(4, EscapeGen::default_capacity(4));
        esc.idle_fill = true;
        // Prime the delay line.
        let mut saw_flags = false;
        for _ in 0..8 {
            if let Some(w) = esc.clock(None, true, false) {
                assert_eq!(w.lanes(), &[FLAG; 4]);
                saw_flags = true;
            }
        }
        assert!(saw_flags);
    }

    #[test]
    fn sustained_throughput_is_one_word_per_cycle_without_escapes() {
        // A long escape-free frame: once the pipe fills, the escape unit
        // must emit a full word every cycle.
        let mut tx = TxPipeline::new(4, 0xFF, FcsMode::Fcs32);
        tx.submit(TxDescriptor {
            protocol: 0x0021,
            payload: vec![0x11; 4000],
        })
        .unwrap();
        let mut out_words = 0u64;
        let mut cycles = 0u64;
        while !tx.idle() {
            cycles += 1;
            if tx.clock(true).is_some() {
                out_words += 1;
            }
            assert!(cycles < 10_000, "runaway");
        }
        let efficiency = out_words as f64 / cycles as f64;
        assert!(
            efficiency > 0.95,
            "escape-free stream must approach 1 word/cycle, got {efficiency}"
        );
    }

    #[test]
    fn fcs_bytes_are_escaped_when_needed() {
        // Find a payload whose FCS contains a flag byte, then check the
        // cycle model still matches the golden model.
        for seed in 0u32..30_000 {
            let payload = seed.to_le_bytes().to_vec();
            let mut body = vec![0xFF, 0x03, 0x00, 0x21];
            body.extend_from_slice(&payload);
            let fcs = p5_crc::fcs32_wire_bytes(p5_crc::fcs32(&body));
            if fcs.contains(&FLAG) || fcs.contains(&ESCAPE) {
                let frames = vec![TxDescriptor {
                    protocol: 0x0021,
                    payload,
                }];
                assert_eq!(run_to_wire(4, &frames), behavioral_wire(&frames));
                return;
            }
        }
        panic!("no payload with stuffable FCS found");
    }

    #[test]
    fn fcs16_mode_works() {
        let mut tx = TxPipeline::new(4, 0xFF, FcsMode::Fcs16);
        tx.submit(TxDescriptor {
            protocol: 0x0021,
            payload: b"short fcs".to_vec(),
        })
        .unwrap();
        let mut wire = Vec::new();
        while !tx.idle() {
            if let Some(w) = tx.clock(true) {
                wire.extend_from_slice(w.lanes());
            }
        }
        // flag + body(4+9) + fcs(2) + flag, nothing escaped
        assert_eq!(wire.len(), 1 + 13 + 2 + 1);
        assert!(p5_crc::check_fcs16(&wire[1..wire.len() - 1]));
    }

    #[test]
    fn phy_stall_freezes_output_without_loss() {
        let frames = vec![TxDescriptor {
            protocol: 0x0021,
            payload: (0..=255u8).collect(),
        }];
        let mut tx = TxPipeline::new(4, 0xFF, FcsMode::Fcs32);
        tx.submit(frames[0].clone()).unwrap();
        let mut wire = Vec::new();
        let mut i = 0u64;
        while !tx.idle() {
            // PHY accepts only every third cycle.
            let ready = i.is_multiple_of(3);
            if let Some(w) = tx.clock(ready) {
                assert!(ready);
                wire.extend_from_slice(w.lanes());
            }
            i += 1;
            assert!(i < 100_000, "runaway");
        }
        assert_eq!(wire, behavioral_wire(&frames));
    }
}

#[cfg(test)]
mod abort_tests {
    use super::*;
    use crate::rx::RxPipeline;
    use crate::word::Word;

    #[test]
    fn tx_abort_is_seen_as_abort_by_the_receiver() {
        let mut tx = TxPipeline::new(4, 0xFF, FcsMode::Fcs32);
        tx.submit(TxDescriptor {
            protocol: 0x0021,
            payload: vec![0x11; 400],
        })
        .unwrap();
        let mut wire = Vec::new();
        // Transmit part of the frame, then pull the plug.
        for i in 0..40 {
            if i == 30 {
                tx.escape.abort_frame();
                // Stop feeding the rest of the frame.
                tx.control = TxControl::new(4, 0xFF);
                tx.crc = TxCrc::new(4, FcsMode::Fcs32);
                tx.latch_flush_for_test();
            }
            if let Some(w) = tx.clock(true) {
                wire.extend_from_slice(w.lanes());
            }
        }
        while !tx.idle() {
            if let Some(w) = tx.clock(true) {
                wire.extend_from_slice(w.lanes());
            }
        }
        // The wire must contain the abort sequence.
        assert!(
            wire.windows(2).any(|w| w == [ESCAPE, FLAG]),
            "abort sequence missing: {wire:02X?}"
        );
        // And the receiver counts exactly one abort, no deliveries.
        let mut rx = RxPipeline::new(4, 0xFF, FcsMode::Fcs32, 4096);
        for chunk in wire.chunks(4) {
            while !rx.ready() {
                rx.clock(None);
            }
            rx.clock(Some(Word::data(chunk)));
        }
        for _ in 0..100 {
            rx.clock(None);
        }
        assert_eq!(rx.counters().aborts, 1);
        assert_eq!(rx.counters().frames_ok, 0);
        assert!(rx.take_frames().is_empty());
    }
}
