//! [`StreamStage`] adapters for the cycle-accurate device: the P⁵'s two
//! shared-memory ends as composable stages.
//!
//! Frame convention on tagged streams at the packet boundary: each frame
//! is `[protocol_hi, protocol_lo, payload...]` (the PPP protocol number in
//! its 2-byte form, then the datagram).  [`encap`]/[`decap`] build and
//! split that shape.  [`TxStage`] consumes such frames and emits raw wire
//! octets; [`RxStage`] consumes raw wire octets and emits such frames —
//! so `stack![TxStage::new(..), RxStage::new(..)]` is the identity on
//! `(protocol, payload)` pairs, modulo the device's error counters.

use crate::p5::{FUSED_WIRE_HIGH_WATER, P5};
use p5_stream::{
    shrink_scratch, FrameId, Observable, Poll, Snapshot, StageStats, StreamStage, WireBuf,
    WordStream,
};

/// Append one `[proto_be, payload]` frame to a tagged stream.
pub fn encap(protocol: u16, payload: &[u8], out: &mut WireBuf) {
    encap_tagged(protocol, payload, 0, out);
}

/// [`encap`] with a frame id riding the stream tags: [`TxStage`] hands it
/// to the device, so trace events correlate back to this frame.
pub fn encap_tagged(protocol: u16, payload: &[u8], id: FrameId, out: &mut WireBuf) {
    out.begin_frame_with_id(id);
    out.extend_frame(&protocol.to_be_bytes());
    out.extend_frame(payload);
    out.end_frame(false);
}

/// Split a `[proto_be, payload]` frame.
pub fn decap(frame: &[u8]) -> Option<(u16, &[u8])> {
    if frame.len() < 2 {
        return None;
    }
    Some((u16::from_be_bytes([frame[0], frame[1]]), &frame[2..]))
}

/// Transmit half of a P⁵ as a stage: tagged `[proto, payload]` frames in,
/// raw wire octets out.  Each `drain` call runs the device for up to
/// `burst` clocks, so a `Stack` step advances device time.
pub struct TxStage {
    dev: P5,
    burst: u64,
    scratch: Vec<u8>,
    stats: StageStats,
}

impl TxStage {
    pub fn new(dev: P5) -> Self {
        Self::with_burst(dev, 256)
    }

    /// `burst` = device clocks ticked per `drain` call (one `Stack` step).
    pub fn with_burst(dev: P5, burst: u64) -> Self {
        TxStage {
            dev,
            burst: burst.max(1),
            scratch: Vec::new(),
            stats: StageStats::default(),
        }
    }

    pub fn device(&self) -> &P5 {
        &self.dev
    }

    pub fn device_mut(&mut self) -> &mut P5 {
        &mut self.dev
    }

    pub fn into_device(self) -> P5 {
        self.dev
    }
}

impl WordStream for TxStage {
    fn offer(&mut self, input: &mut WireBuf) -> Poll {
        let mut accepted = 0;
        while input.frame_ready() {
            // Fused fast path: staged pipeline drained, plain PPP duty,
            // wire headroom — the frame goes straight to wire bytes in
            // one call, skipping the per-word stage hops.
            let fused = self.dev.fused_tx_ready();
            if !fused && self.dev.tx.control.queue_free() == 0 {
                // Bounded shared-memory queue full: deassert ready.
                self.stats.stall_cycles += 1;
                return if accepted == 0 {
                    Poll::Blocked
                } else {
                    Poll::Ready(accepted)
                };
            }
            let meta = input
                .pop_frame_into(&mut self.scratch)
                .expect("frame_ready() guarantees a complete frame");
            accepted += meta.len;
            self.stats.words_in += 1;
            if meta.abort {
                continue; // an aborted frame never reaches the queue
            }
            if let Some((protocol, payload)) = decap(&self.scratch) {
                if fused && self.dev.fused_submit_wire(protocol, payload, meta.id) {
                    continue;
                }
                // Staged path: payload storage comes from the device
                // pool, so steady-state traffic recycles instead of
                // allocating per frame.
                let mut buf = self.dev.lease_tx_buf();
                buf.extend_from_slice(payload);
                self.dev
                    .submit_tagged(protocol, buf, meta.id)
                    .expect("queue_free checked above");
            }
        }
        shrink_scratch(&mut self.scratch);
        Poll::Ready(accepted)
    }

    fn drain(&mut self, output: &mut WireBuf) -> Poll {
        // Downstream has not consumed what we already delivered: deassert
        // valid and let wire_out back up — which parks the fused fast
        // path in `offer` and, once the bounded queue fills, propagates
        // `Blocked` upstream.
        let room = FUSED_WIRE_HIGH_WATER.saturating_sub(output.len());
        if room == 0 {
            self.stats.stall_cycles += 1;
            return Poll::Blocked;
        }
        for _ in 0..self.burst {
            let done = if self.dev.tx.escape.idle_fill {
                // Continuous line: flag fill keeps the wire busy until
                // the frame sources drain *and* the wire is ferried.
                self.is_idle() && !self.dev.has_wire_out()
            } else {
                // Plain duty: an idle datapath has nothing to add —
                // don't burn clocks just to ferry already-made bytes.
                self.dev.tx.idle()
            };
            if done {
                break;
            }
            self.dev.clock();
        }
        let n = self.dev.drain_wire_into_bounded(output, room);
        self.stats.words_out += u64::from(n > 0);
        self.stats.bytes_out += n as u64;
        Poll::Ready(n)
    }
}

impl Observable for TxStage {
    /// Stage flow counters plus the whole transmitter pipeline's tallies
    /// (the pipeline's own `cycles` is dropped — the stage already
    /// reports device cycles).
    fn snapshot(&self) -> Snapshot {
        let mut s = StreamStage::stats(self).snapshot("p5-tx");
        for (name, value) in Observable::snapshot(&self.dev.tx).counters {
            if name != "cycles" {
                s.push_counter(name, value);
            }
        }
        s
    }
}

impl StreamStage for TxStage {
    fn name(&self) -> &'static str {
        "p5-tx"
    }

    fn is_idle(&self) -> bool {
        let tx = &self.dev.tx;
        // In idle_fill mode the escape unit never idles (continuous
        // line); the stage is done when the frame sources have drained.
        let datapath_idle = if tx.escape.idle_fill {
            tx.source_idle()
        } else {
            tx.idle()
        };
        datapath_idle && !self.dev.has_wire_out()
    }

    fn stats(&self) -> StageStats {
        let mut s = self.stats;
        s.cycles = self.dev.cycles;
        s.rejects = self.dev.tx.control.submit_rejects;
        s
    }
}

/// Receive half of a P⁵ as a stage: raw wire octets in, tagged
/// `[proto, payload]` frames out.  `offer` clocks the device while it
/// chews the delivered bytes (up to `burst` words per call).
pub struct RxStage {
    dev: P5,
    burst: u64,
    stats: StageStats,
    /// Next frame id stamped onto delivered frames' stream tags.
    next_id: FrameId,
}

impl RxStage {
    pub fn new(dev: P5) -> Self {
        Self::with_burst(dev, 256)
    }

    pub fn with_burst(dev: P5, burst: u64) -> Self {
        RxStage {
            dev,
            burst: burst.max(1),
            stats: StageStats::default(),
            next_id: 0,
        }
    }

    pub fn device(&self) -> &P5 {
        &self.dev
    }

    pub fn device_mut(&mut self) -> &mut P5 {
        &mut self.dev
    }

    pub fn into_device(self) -> P5 {
        self.dev
    }
}

impl WordStream for RxStage {
    fn offer(&mut self, input: &mut WireBuf) -> Poll {
        // Fused fast path: the staged pipeline is drained, so delineate
        // the delivered bytes in bulk (flag-free runs move as single
        // copies) instead of clocking them through a word at a time.
        if let Some(n) = self.dev.fused_ingest_wire(input, FUSED_WIRE_HIGH_WATER) {
            self.stats.words_in += u64::from(n > 0);
            return Poll::Ready(n);
        }
        let max = (self.burst as usize) * self.dev.width().bytes();
        let n = self.dev.offer_wire_from(input, max);
        self.stats.words_in += u64::from(n > 0);
        // Clock the receiver through what it was just handed (bounded:
        // destuffing shrinks, so 2x the word budget always suffices).
        let mut budget = 2 * self.burst;
        while self.dev.wire_in_pending() > 0 && budget > 0 {
            self.dev.clock();
            budget -= 1;
        }
        Poll::Ready(n)
    }

    fn drain(&mut self, output: &mut WireBuf) -> Poll {
        // A few trailing clocks flush the pipeline latches after the wire
        // goes quiet.
        for _ in 0..8 {
            if self.dev.rx.idle() {
                break;
            }
            self.dev.clock();
        }
        let mut n = 0;
        for f in self.dev.take_received() {
            self.next_id += 1;
            output.begin_frame_with_id(self.next_id);
            output.extend_frame(&f.protocol.to_be_bytes());
            output.extend_frame(&f.payload);
            output.end_frame(false);
            n += 2 + f.payload.len();
            self.stats.words_out += 1;
            // Storage goes back to the device pool for the next frame.
            self.dev.recycle_rx_payload(f.payload);
        }
        self.stats.bytes_out += n as u64;
        Poll::Ready(n)
    }
}

impl Observable for RxStage {
    /// Stage flow counters plus the whole receiver pipeline's tallies.
    fn snapshot(&self) -> Snapshot {
        let mut s = StreamStage::stats(self).snapshot("p5-rx");
        for (name, value) in Observable::snapshot(&self.dev.rx).counters {
            if name != "cycles" {
                s.push_counter(name, value);
            }
        }
        s
    }
}

impl StreamStage for RxStage {
    fn name(&self) -> &'static str {
        "p5-rx"
    }

    fn is_idle(&self) -> bool {
        // Delivered-but-undrained frames hold the stage busy: the fused
        // path completes frames with zero pipeline latency, so unlike
        // the staged path there may be no trailing clocks left to keep
        // `rx.idle()` false until the next `drain` picks them up.
        self.dev.rx.idle()
            && self.dev.wire_in_pending() == 0
            && self.dev.fused_rx_idle()
            && self.dev.rx.control.queued_frames().is_empty()
    }

    fn stats(&self) -> StageStats {
        let mut s = self.stats;
        s.cycles = self.dev.cycles;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::p5::DatapathWidth;
    use p5_stream::stack;

    #[test]
    fn tx_then_rx_stack_is_identity_on_datagrams() {
        let mut s = stack![
            TxStage::new(P5::new(DatapathWidth::W32)),
            RxStage::new(P5::new(DatapathWidth::W32)),
        ];
        let payloads: Vec<Vec<u8>> = vec![
            b"first".to_vec(),
            vec![0x7E, 0x7D, 0x20, 0x7E],
            (0..=255).collect(),
        ];
        for p in &payloads {
            encap(0x0021, p, s.input());
        }
        assert!(s.run_until_idle(500), "stack failed to drain");
        let mut got = Vec::new();
        let mut frame = Vec::new();
        while s.output().pop_frame_into(&mut frame).is_some() {
            let (proto, payload) = decap(&frame).unwrap();
            assert_eq!(proto, 0x0021);
            got.push(payload.to_vec());
        }
        assert_eq!(got, payloads);
    }

    #[test]
    fn tx_stage_blocks_when_queue_full() {
        let dev = P5::new(DatapathWidth::W32);
        let mut tx = TxStage::new(dev);
        // The bounded queue is a staged-pipeline structure; the fused
        // path's backpressure is the wire high-water mark instead.
        tx.device_mut().fused_enabled = false;
        tx.device_mut().tx.control.queue_depth = 1;
        let mut input = WireBuf::new();
        encap(0x0021, &[1, 2, 3], &mut input);
        encap(0x0021, &[4, 5, 6], &mut input);
        // First frame fits, second must stay in the buffer.
        assert_eq!(tx.offer(&mut input), Poll::Ready(5));
        assert_eq!(input.frames_ready(), 1, "second frame still queued");
        assert!(tx.offer(&mut input).is_blocked());
        // Drain the device, then the held frame goes through.
        let mut wire = WireBuf::new();
        tx.drain(&mut wire);
        assert_eq!(tx.offer(&mut input), Poll::Ready(5));
        assert!(input.is_empty());
    }

    #[test]
    fn w8_and_w32_stacks_agree() {
        for width in [DatapathWidth::W8, DatapathWidth::W32] {
            let mut s = stack![TxStage::new(P5::new(width)), RxStage::new(P5::new(width)),];
            encap(0x8021, b"ipcp conf-req", s.input());
            assert!(s.run_until_idle(2000));
            let (frame, _) = s.output().pop_frame().unwrap();
            assert_eq!(decap(&frame).unwrap(), (0x8021, &b"ipcp conf-req"[..]));
        }
    }
}
