//! The top-level P⁵ device: transmitter, receiver and OAM glued to a
//! PHY byte interface (Figure 2), with a cycle-accurate `clock()`.

use crate::oam::{ctrl, Interrupt, OamHandle};
use crate::rx::{RxCounters, RxPipeline};
use crate::tx::{fcs_params, TxDescriptor, TxPipeline, TxQueueFull};
use crate::word::Word;
use p5_crc::{fcs16_wire_bytes, fcs32_wire_bytes, CrcEngine, EngineKind, FcsEngine};
use p5_hdlc::{scan, stuff_into, Accm, FcsMode, ESCAPE, ESCAPE_XOR, FLAG};
use p5_stream::{
    BufPool, Event, EventKind, FrameId, NullSink, Poll, TraceSink, WireBuf, WordStream,
};
use std::collections::VecDeque;

pub use crate::rx::ReceivedFrame;

/// The two datapath widths the paper implements and compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatapathWidth {
    /// 8-bit datapath: "commercial PPP packet processors are 8-bit
    /// systems" — the 625 Mbps baseline.
    W8,
    /// 32-bit datapath: the 2.5 Gbps P⁵.
    W32,
}

impl DatapathWidth {
    /// Lanes (bytes per clock).
    pub const fn bytes(self) -> usize {
        match self {
            DatapathWidth::W8 => 1,
            DatapathWidth::W32 => 4,
        }
    }

    /// Line rate class served at the required clock.
    pub const fn line_rate_bps(self) -> u64 {
        match self {
            DatapathWidth::W8 => 625_000_000,
            DatapathWidth::W32 => 2_500_000_000,
        }
    }

    /// The clock frequency needed to sustain the line rate: both widths
    /// need ≥ 78.125 MHz (625 Mbps / 8 = 2.5 Gbps / 32).
    pub const fn required_clock_hz(self) -> u64 {
        self.line_rate_bps() / (8 * self.bytes() as u64)
    }
}

/// The datapath's cached view of the OAM configuration registers,
/// refreshed only when the register file's version counter moves —
/// registers stay live without a lock acquisition per clock.
#[derive(Debug, Clone, Copy)]
struct OamConfigCache {
    version: u64,
    tx_en: bool,
    rx_en: bool,
    promiscuous: bool,
    loopback: bool,
    address: u8,
    max_body: u32,
}

/// The status/counter image last written back to the OAM, so
/// `sync_oam` can skip the write lock on the (vast majority of) cycles
/// where nothing changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct OamSyncedImage {
    tx_busy: bool,
    rx_in_frame: bool,
    counters: RxCounters,
    tx_frames: u64,
    tx_rejects: u64,
}

/// Frame-lifecycle bookkeeping for trace-event emission: FIFO id queues
/// matching the pipeline's in-order frame flow, plus the last-seen value
/// of each unit counter so `clock()` can turn counter deltas into events.
/// Only touched when a real sink is installed.
#[derive(Debug, Default)]
struct TraceState {
    next_id: FrameId,
    /// Submitted, awaiting `Framed`.
    tx_ids: VecDeque<FrameId>,
    /// Framed, awaiting `Stuffed`.
    framed_ids: VecDeque<FrameId>,
    /// Stuffed, awaiting the closing flag on the wire.
    stuffed_ids: VecDeque<FrameId>,
    /// Delineated on receive, awaiting a verdict.
    rx_pending: VecDeque<FrameId>,
    rx_seq: FrameId,
    /// Wire-scan state: inside a frame (non-flag bytes seen).
    wire_in_frame: bool,
    last_frames_sent: u64,
    last_frames_stuffed: u64,
    last_frames_delineated: u64,
    last_rx: RxCounters,
}

/// Above this many pending wire-out bytes the fused Tx path declares
/// backpressure and hands the frame to the staged pipeline instead.
/// [`crate::stream::TxStage`] uses the same mark to bound how far it
/// runs ahead of an unconsuming downstream.
pub const FUSED_WIRE_HIGH_WATER: usize = 64 * 1024;

/// State of the fused (stage-hop-skipping) fast paths: persistent FCS
/// engines plus the Rx delineation machine that replaces the
/// EscapeDetect → RxCrc → RxControl word march when the cycle model is
/// not being exercised.
struct Fused {
    fcs: FcsMode,
    tx_engine: Option<FcsEngine>,
    rx_engine: Option<FcsEngine>,
    /// Destuffed bytes of the frame currently being delineated.
    rx_acc: Vec<u8>,
    rx_in_frame: bool,
    rx_esc_pending: bool,
    rx_overrun: bool,
}

impl Fused {
    fn new(width: usize, fcs: FcsMode) -> Self {
        let make = || fcs_params(fcs).map(|p| FcsEngine::new(EngineKind::default(), p, width));
        Self {
            fcs,
            tx_engine: make(),
            rx_engine: make(),
            rx_acc: Vec::new(),
            rx_in_frame: false,
            rx_esc_pending: false,
            rx_overrun: false,
        }
    }

    /// No partially delineated fused frame in flight.
    fn rx_idle(&self) -> bool {
        !self.rx_in_frame && !self.rx_esc_pending
    }
}

/// The P⁵ device.
pub struct P5 {
    width: DatapathWidth,
    pub tx: TxPipeline,
    pub rx: RxPipeline,
    pub oam: OamHandle,
    /// Wire bytes produced, awaiting the PHY (batched, tag-free).
    wire_out: WireBuf,
    /// Wire bytes delivered by the PHY, awaiting the receiver.
    wire_in: WireBuf,
    pub cycles: u64,
    tx_was_busy: bool,
    counters_snapshot: RxCounters,
    cfg: OamConfigCache,
    synced: OamSyncedImage,
    /// Recycled frame-buffer storage shared by both directions.
    pool: BufPool,
    fused: Fused,
    /// Master enable for the fused fast paths (on by default).  Turn
    /// off to force every frame through the cycle-accurate staged
    /// pipeline — the reference behaviour for equivalence tests.
    pub fused_enabled: bool,
    sink: Box<dyn TraceSink + Send>,
    /// Cached `sink.enabled()` so the disabled path costs one branch.
    trace_enabled: bool,
    trace: TraceState,
}

impl P5 {
    pub fn new(width: DatapathWidth) -> Self {
        Self::with_oam(width, OamHandle::new())
    }

    pub fn with_oam(width: DatapathWidth, oam: OamHandle) -> Self {
        let version = oam.version();
        let (cfg, fcs16, max_body) = oam.read_state(|s| {
            (
                OamConfigCache {
                    version,
                    tx_en: s.ctrl & ctrl::TX_ENABLE != 0,
                    rx_en: s.ctrl & ctrl::RX_ENABLE != 0,
                    promiscuous: s.ctrl & ctrl::PROMISCUOUS != 0,
                    loopback: s.ctrl & ctrl::LOOPBACK != 0,
                    address: s.address,
                    max_body: s.max_body,
                },
                s.ctrl & ctrl::FCS16 != 0,
                s.max_body as usize,
            )
        });
        let fcs = if fcs16 {
            FcsMode::Fcs16
        } else {
            FcsMode::Fcs32
        };
        let w = width.bytes();
        let pool = BufPool::new();
        let mut tx = TxPipeline::new(w, cfg.address, fcs);
        tx.control.set_pool(pool.clone());
        let mut rx = RxPipeline::new(w, cfg.address, fcs, max_body);
        rx.control.promiscuous = cfg.promiscuous;
        rx.control.set_pool(pool.clone());
        Self {
            width,
            tx,
            rx,
            oam,
            wire_out: WireBuf::new(),
            wire_in: WireBuf::new(),
            cycles: 0,
            tx_was_busy: false,
            counters_snapshot: RxCounters::default(),
            cfg,
            synced: OamSyncedImage::default(),
            pool,
            fused: Fused::new(w, fcs),
            fused_enabled: true,
            sink: Box::new(NullSink),
            trace_enabled: false,
            trace: TraceState::default(),
        }
    }

    /// The device's shared recycled-buffer pool (clone to share storage
    /// with the stages feeding this device).
    pub fn buf_pool(&self) -> BufPool {
        self.pool.clone()
    }

    /// Lease recycled storage suitable for a submit payload.
    pub fn lease_tx_buf(&self) -> Vec<u8> {
        self.tx.control.lease_buf()
    }

    /// Hand a delivered payload's storage back to the device pool.
    pub fn recycle_rx_payload(&mut self, payload: Vec<u8>) {
        self.rx.control.recycle_payload(payload);
    }

    /// Install a trace sink.  The frame lifecycle (submit → framed →
    /// stuffed → wire → delineated → CRC verdict → delivered), stamped
    /// with the device cycle counter, plus OAM register writes flow into
    /// it.  Install [`NullSink`] (the default) to disable tracing; the
    /// instrumented paths then cost one predicted branch per clock.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink + Send>) {
        self.trace_enabled = sink.enabled();
        self.sink = sink;
    }

    pub fn trace_enabled(&self) -> bool {
        self.trace_enabled
    }

    pub fn width(&self) -> DatapathWidth {
        self.width
    }

    /// Queue a datagram for transmission (shared-memory write).  Refused
    /// with the descriptor handed back when the bounded transmit queue is
    /// full (see [`crate::tx::TxControl::queue_depth`]); the refusal is
    /// counted in `StageStats::rejects` and the OAM `TX_REJECTS` register.
    pub fn submit(&mut self, protocol: u16, payload: Vec<u8>) -> Result<(), TxQueueFull> {
        self.submit_tagged(protocol, payload, 0)
    }

    /// [`P5::submit`] with a caller-chosen frame id for trace correlation
    /// (`0` = assign the next internal id).  The id rides the FIFO frame
    /// flow through every lifecycle event.
    pub fn submit_tagged(
        &mut self,
        protocol: u16,
        payload: Vec<u8>,
        id: FrameId,
    ) -> Result<(), TxQueueFull> {
        let len = payload.len() as u32;
        let res = self.tx.submit(TxDescriptor { protocol, payload });
        if res.is_ok() && self.trace_enabled {
            let id = if id != 0 {
                id
            } else {
                self.trace.next_id += 1;
                self.trace.next_id
            };
            self.trace.tx_ids.push_back(id);
            self.sink.record(Event {
                cycle: self.cycles,
                kind: EventKind::Submit { id, len },
            });
        }
        res
    }

    /// Wire bytes the transmitter has produced since the last call.
    /// Returns without allocating when nothing is pending; pass the `Vec`
    /// back through [`P5::recycle_wire_vec`] to reuse its storage.
    pub fn take_wire_out(&mut self) -> Vec<u8> {
        self.wire_out.take_vec()
    }

    /// Hand a spent `take_wire_out` buffer back for reuse.
    pub fn recycle_wire_vec(&mut self, v: Vec<u8>) {
        self.wire_out.recycle(v);
    }

    /// Deliver wire bytes from the PHY to the receiver (one batched copy).
    pub fn put_wire_in(&mut self, bytes: &[u8]) {
        self.wire_in.push_slice(bytes);
    }

    /// Move the transmitter's pending wire bytes into `out` without
    /// re-allocating. Returns bytes moved.
    pub fn drain_wire_into(&mut self, out: &mut WireBuf) -> usize {
        out.move_from(&mut self.wire_out, usize::MAX)
    }

    /// Bounded [`P5::drain_wire_into`]: move at most `max` pending wire
    /// bytes, leaving the rest to back-pressure the transmitter.
    pub fn drain_wire_into_bounded(&mut self, out: &mut WireBuf, max: usize) -> usize {
        out.move_from(&mut self.wire_out, max)
    }

    /// Move up to `max` wire bytes from `src` to the receiver's wire-in
    /// buffer. Returns bytes moved.
    pub fn offer_wire_from(&mut self, src: &mut WireBuf, max: usize) -> usize {
        self.wire_in.move_from(src, max)
    }

    pub fn has_wire_out(&self) -> bool {
        !self.wire_out.is_empty()
    }

    /// Wire bytes delivered by the PHY but not yet clocked into the
    /// receiver.
    pub fn wire_in_pending(&self) -> usize {
        self.wire_in.len()
    }

    /// Frames delivered to receive shared memory since the last call.
    pub fn take_received(&mut self) -> Vec<ReceivedFrame> {
        self.rx.take_frames()
    }

    pub fn rx_counters(&self) -> &RxCounters {
        self.rx.counters()
    }

    /// Refresh programmable parameters when (and only when) a register
    /// changed — registers stay live, but the steady-state cost is one
    /// atomic load instead of several lock round trips.  Shared by the
    /// cycle-accurate `clock()` and the fused fast paths.
    fn refresh_cfg(&mut self) {
        let version = self.oam.version();
        if version == self.cfg.version {
            return;
        }
        self.cfg = self.oam.read_state(|s| OamConfigCache {
            version,
            tx_en: s.ctrl & ctrl::TX_ENABLE != 0,
            rx_en: s.ctrl & ctrl::RX_ENABLE != 0,
            promiscuous: s.ctrl & ctrl::PROMISCUOUS != 0,
            loopback: s.ctrl & ctrl::LOOPBACK != 0,
            address: s.address,
            max_body: s.max_body,
        });
        self.tx.control.address = self.cfg.address;
        self.rx.control.address = self.cfg.address;
        self.rx.control.promiscuous = self.cfg.promiscuous;
        // MAX_BODY (§13.4) is live like the other programmable
        // registers: a host write takes effect at the next frame
        // boundary the accumulator checks, so the giant filter
        // follows the negotiated MRU.
        self.rx.control.max_body = self.cfg.max_body as usize;
        // Register writes are the only version bumps besides the
        // datapath's own sync, so the (rare) refresh path is where
        // the host's bus writes become trace events.
        if self.trace_enabled {
            for (addr, value) in self.oam.take_writes() {
                self.sink.record(Event {
                    cycle: self.cycles,
                    kind: EventKind::OamWrite { addr, value },
                });
            }
        }
    }

    /// Advance the device by one clock.
    pub fn clock(&mut self) {
        self.cycles += 1;
        self.refresh_cfg();

        let (tx_en, rx_en, loopback) = (self.cfg.tx_en, self.cfg.rx_en, self.cfg.loopback);
        let mut wire_word = None;
        if tx_en {
            if let Some(w) = self.tx.clock(true) {
                if loopback {
                    // Diagnostic loopback: the PHY pins never see the
                    // data; it re-enters the receiver directly.
                    self.wire_in.push_slice(w.lanes());
                } else {
                    self.wire_out.push_slice(w.lanes());
                }
                wire_word = Some(w);
            }
        }
        if rx_en {
            let input = if self.rx.ready() && !self.wire_in.is_empty() {
                // Slice-batched ingest: peek the next word's lanes in
                // place, then bump the cursor — no per-byte dequeue.
                let avail = self.wire_in.as_slice();
                let n = self.width.bytes().min(avail.len());
                let w = Word::data(&avail[..n]);
                self.wire_in.consume(n);
                Some(w)
            } else {
                None
            };
            self.rx.clock(input);
        }
        if self.trace_enabled {
            self.trace_tick(wire_word);
        }
        self.sync_oam();
    }

    /// Can [`P5::fused_submit_wire`] take the next frame?  True when the
    /// staged transmitter is drained (nothing to reorder around), the
    /// device is in plain PPP duty (no idle-fill flag stream, no
    /// loopback), and the wire-out buffer is below its backpressure
    /// high-water mark.
    pub fn fused_tx_ready(&self) -> bool {
        self.fused_enabled
            && self.cfg.tx_en
            && !self.cfg.loopback
            && !self.tx.escape.idle_fill
            && self.tx.idle()
            && self.wire_out.len() < FUSED_WIRE_HIGH_WATER
    }

    /// Fused encap → FCS → stuff → wire fast path: one call takes a
    /// payload from shared memory to complete wire bytes, skipping the
    /// per-word stage hops of the cycle model.  Byte-for-byte identical
    /// wire output (flag sharing included), same lifecycle trace events,
    /// same flow counters; per-cycle occupancy/latency statistics remain
    /// cycle-model-only, and `cycles` does not advance.
    ///
    /// Returns `false` without side effects when the fast path is not
    /// eligible (see [`P5::fused_tx_ready`]) — the caller then falls
    /// back to [`P5::submit_tagged`] and the staged pipeline.
    pub fn fused_submit_wire(&mut self, protocol: u16, payload: &[u8], id: FrameId) -> bool {
        self.refresh_cfg();
        if !self.fused_tx_ready() {
            return false;
        }
        let header = [
            self.cfg.address,
            0x03,
            (protocol >> 8) as u8,
            protocol as u8,
        ];
        let fcs_len = self.fused.fcs.len();
        let mut fcs_bytes = [0u8; 4];
        if let Some(e) = &mut self.fused.tx_engine {
            e.reset();
            e.update(&header);
            e.update(payload);
            match self.fused.fcs {
                FcsMode::Fcs16 => {
                    fcs_bytes[..2].copy_from_slice(&fcs16_wire_bytes(e.value() as u16));
                }
                _ => fcs_bytes.copy_from_slice(&fcs32_wire_bytes(e.value())),
            }
        }
        // Flag sharing continues seamlessly across fused and staged
        // frames: open with a flag only if the previous wire octet was
        // not already one.
        let open_flag = !self.tx.escape.last_was_flag();
        let mut escapes = 0usize;
        self.wire_out.extend_untagged_with(|out| {
            if open_flag {
                out.push(FLAG);
            }
            escapes += stuff_into(&header, Accm::SONET, out);
            escapes += stuff_into(payload, Accm::SONET, out);
            escapes += stuff_into(&fcs_bytes[..fcs_len], Accm::SONET, out);
            out.push(FLAG);
        });
        self.tx.escape.set_last_was_flag(true);
        // Flow-counter parity with the staged pipeline.
        let body_len = header.len() + payload.len();
        self.tx.control.frames_sent += 1;
        self.tx.control.stats.words_out += body_len.div_ceil(self.width.bytes()) as u64;
        self.tx.control.stats.bytes_out += body_len as u64;
        self.tx.escape.frames_stuffed += 1;
        self.tx.escape.escapes_inserted += escapes as u64;
        if self.trace_enabled {
            let id = if id != 0 {
                id
            } else {
                self.trace.next_id += 1;
                self.trace.next_id
            };
            self.trace.tx_ids.push_back(id);
            self.sink.record(Event {
                cycle: self.cycles,
                kind: EventKind::Submit {
                    id,
                    len: payload.len() as u32,
                },
            });
            // The counter bumps above turn into Framed/Stuffed events
            // through the same delta bookkeeping the staged path uses.
            self.trace_tick(None);
            let id = self.trace.stuffed_ids.pop_front().unwrap_or(0);
            self.sink.record(Event {
                cycle: self.cycles,
                kind: EventKind::Wire { id },
            });
        }
        self.sync_oam();
        // The frame completed within this call: that is the staged
        // pipeline's busy→idle edge, compressed to a point.
        self.oam.raise(Interrupt::TxDone);
        true
    }

    /// Can [`P5::fused_ingest_wire`] process wire bytes right now?  True
    /// when the staged receiver is drained and has nothing queued (a
    /// fused frame in progress keeps the staged pipeline idle, so the
    /// fast path stays engaged across partial deliveries).
    pub fn fused_rx_ready(&self) -> bool {
        self.fused_enabled
            && self.cfg.rx_en
            && !self.cfg.loopback
            && self.wire_in.is_empty()
            && self.rx.idle()
    }

    /// No partially delineated fused-Rx frame is in flight.
    pub fn fused_rx_idle(&self) -> bool {
        self.fused.rx_idle()
    }

    /// Fused delineate → destuff → FCS-check → deliver fast path: scans
    /// up to `max_bytes` wire octets from `input` in bulk (flag/escape
    /// free runs move as single copies), validates complete frames with
    /// the persistent slicing engine and delivers them through the same
    /// classification tail — counters, OAM mirror, interrupts and trace
    /// events — as the staged receiver.
    ///
    /// Returns `None` without consuming anything when the fast path is
    /// not eligible (see [`P5::fused_rx_ready`]); the caller then feeds
    /// the staged pipeline instead.
    pub fn fused_ingest_wire(&mut self, input: &mut WireBuf, max_bytes: usize) -> Option<usize> {
        self.refresh_cfg();
        if !self.fused_rx_ready() {
            return None;
        }
        let budget = input.len().min(max_bytes);
        let bytes = &input.as_slice()[..budget];
        let cap = self.rx.control.max_body + self.fused.fcs.len();
        let mut frames_closed = 0u64;
        let mut i = 0;
        while i < budget {
            let b = bytes[i];
            if self.fused.rx_esc_pending {
                i += 1;
                self.fused.rx_esc_pending = false;
                if b == FLAG {
                    // RFC 1662 abort sequence: 7D 7E.
                    self.close_fused_frame(true);
                    frames_closed += 1;
                } else {
                    self.push_fused_byte(b ^ ESCAPE_XOR, cap);
                }
                continue;
            }
            if b == FLAG {
                i += 1;
                if self.fused.rx_in_frame {
                    self.close_fused_frame(false);
                    frames_closed += 1;
                } else {
                    self.rx.escape.idle_flags += 1;
                }
                continue;
            }
            if b == ESCAPE {
                i += 1;
                self.fused.rx_esc_pending = true;
                self.fused.rx_in_frame = true;
                self.rx.escape.escapes_removed += 1;
                continue;
            }
            // Bulk path: accept the whole flag/escape-free run at once.
            self.fused.rx_in_frame = true;
            let run = scan::clean_prefix_len(&bytes[i..]);
            debug_assert!(run > 0);
            let take = run.min(cap.saturating_sub(self.fused.rx_acc.len()));
            self.fused.rx_acc.extend_from_slice(&bytes[i..i + take]);
            if take < run {
                self.fused.rx_overrun = true;
            }
            i += run;
        }
        input.consume(i);
        self.rx.escape.frames_delineated += frames_closed;
        if self.trace_enabled && (frames_closed > 0 || i > 0) {
            self.trace_tick(None);
        }
        self.sync_oam();
        Some(i)
    }

    /// Accept one destuffed octet into the fused accumulator, honouring
    /// the giant cap the staged Control unit enforces.
    fn push_fused_byte(&mut self, b: u8, cap: usize) {
        self.fused.rx_in_frame = true;
        if self.fused.rx_acc.len() >= cap {
            self.fused.rx_overrun = true;
        } else {
            self.fused.rx_acc.push(b);
        }
    }

    /// A closing flag (or abort sequence) ended the fused frame: run the
    /// FCS check over the accumulated body and hand it to the shared
    /// classification tail.
    fn close_fused_frame(&mut self, abort: bool) {
        self.fused.rx_in_frame = false;
        let overrun = std::mem::take(&mut self.fused.rx_overrun);
        let verdict = if abort || overrun {
            // The verdict is never consulted on these paths (and the
            // staged CRC unit's would be over different truncated
            // bytes), so skip the computation entirely.
            None
        } else {
            self.fused.rx_engine.as_mut().map(|e| {
                e.reset();
                e.update(&self.fused.rx_acc);
                e.residue() == e.params().good_residue
            })
        };
        self.rx
            .control
            .classify(&self.fused.rx_acc, abort, overrun, verdict);
        self.fused.rx_acc.clear();
    }

    /// Turn this cycle's unit-counter deltas into lifecycle events.  The
    /// pipeline is strictly in order per direction, so FIFO id queues
    /// carry each frame's identity from stage to stage.
    fn trace_tick(&mut self, wire: Option<Word>) {
        let cycle = self.cycles;
        while self.trace.last_frames_sent < self.tx.control.frames_sent {
            self.trace.last_frames_sent += 1;
            let id = self.trace.tx_ids.pop_front().unwrap_or(0);
            self.trace.framed_ids.push_back(id);
            self.sink.record(Event {
                cycle,
                kind: EventKind::Framed { id },
            });
        }
        while self.trace.last_frames_stuffed < self.tx.escape.frames_stuffed {
            self.trace.last_frames_stuffed += 1;
            let id = self.trace.framed_ids.pop_front().unwrap_or(0);
            self.trace.stuffed_ids.push_back(id);
            self.sink.record(Event {
                cycle,
                kind: EventKind::Stuffed { id },
            });
        }
        // The wire leaves word-at-a-time; a flag closing a frame (any
        // flag after non-flag bytes — stuffing guarantees no payload
        // flags) marks the frame's last byte on the wire.
        if let Some(w) = wire {
            for &b in w.lanes() {
                if b != FLAG {
                    self.trace.wire_in_frame = true;
                } else if self.trace.wire_in_frame {
                    self.trace.wire_in_frame = false;
                    let id = self.trace.stuffed_ids.pop_front().unwrap_or(0);
                    self.sink.record(Event {
                        cycle,
                        kind: EventKind::Wire { id },
                    });
                }
            }
        }
        while self.trace.last_frames_delineated < self.rx.escape.frames_delineated {
            self.trace.last_frames_delineated += 1;
            self.trace.rx_seq += 1;
            let id = self.trace.rx_seq;
            self.trace.rx_pending.push_back(id);
            self.sink.record(Event {
                cycle,
                kind: EventKind::Delineated { id },
            });
        }
        let c = *self.rx.counters();
        let prev = self.trace.last_rx;
        if c == prev {
            return;
        }
        let new_ok = (c.frames_ok - prev.frames_ok) as usize;
        if new_ok > 0 {
            let queued = self.rx.control.queued_frames();
            let lens: Vec<u32> = queued
                .iter()
                .skip(queued.len().saturating_sub(new_ok))
                .map(|f| f.payload.len() as u32)
                .collect();
            for len in lens {
                let id = self.trace.rx_pending.pop_front().unwrap_or(0);
                self.sink.record(Event {
                    cycle,
                    kind: EventKind::CrcVerdict { id, ok: true },
                });
                self.sink.record(Event {
                    cycle,
                    kind: EventKind::Delivered { id, len },
                });
            }
        }
        for _ in prev.fcs_errors..c.fcs_errors {
            let id = self.trace.rx_pending.pop_front().unwrap_or(0);
            self.sink.record(Event {
                cycle,
                kind: EventKind::CrcVerdict { id, ok: false },
            });
        }
        // Non-CRC defect classes consume the pending id silently so the
        // FIFO stays aligned with the wire.
        for _ in 0..(c.errors() - prev.errors()).saturating_sub(c.fcs_errors - prev.fcs_errors) {
            self.trace.rx_pending.pop_front();
        }
        self.trace.last_rx = c;
    }

    /// Run `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.clock();
        }
    }

    /// Clock until both directions drain (or the cycle budget runs out).
    /// Returns cycles consumed.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> u64 {
        let start = self.cycles;
        while !(self.tx.idle() && self.rx.idle() && self.wire_in.is_empty()) {
            self.clock();
            assert!(
                self.cycles - start < max_cycles,
                "P5 failed to drain within {max_cycles} cycles"
            );
        }
        self.cycles - start
    }

    /// Mirror datapath state into the OAM registers and fire interrupts.
    fn sync_oam(&mut self) {
        let tx_busy = !self.tx.idle();
        let rx_in_frame = self.rx.escape.occupancy() > 0 || !self.rx.control.idle();
        // Steady-state early-out: when none of the mirrored signals
        // moved there is nothing to write and no interrupt edge.  (The
        // previous cycle left `synced.tx_busy == tx_was_busy`, so an
        // unchanged `tx_busy` also rules out the TX-done edge.)
        if tx_busy == self.synced.tx_busy
            && rx_in_frame == self.synced.rx_in_frame
            && *self.rx.counters() == self.counters_snapshot
            && self.tx.control.frames_sent == self.synced.tx_frames
            && self.tx.control.submit_rejects == self.synced.tx_rejects
        {
            self.tx_was_busy = tx_busy;
            return;
        }
        let c = *self.rx.counters();
        let prev = self.counters_snapshot;
        let tx_done_edge = self.tx_was_busy && !tx_busy;
        self.tx_was_busy = tx_busy;

        let new_frames = c.frames_ok > prev.frames_ok;
        let new_errors =
            (c.fcs_errors + c.aborts + c.runts + c.giants + c.header_errors + c.address_mismatches)
                > (prev.fcs_errors
                    + prev.aborts
                    + prev.runts
                    + prev.giants
                    + prev.header_errors
                    + prev.address_mismatches);
        self.counters_snapshot = c;

        let image = OamSyncedImage {
            tx_busy,
            rx_in_frame,
            counters: c,
            tx_frames: self.tx.control.frames_sent,
            tx_rejects: self.tx.control.submit_rejects,
        };
        // Write-on-change: the registers only need the lock when the
        // mirrored state actually moved (a few times per frame, not
        // once per clock).
        if image != self.synced {
            self.oam.with_state(|s| {
                s.tx_busy = tx_busy;
                s.rx_in_frame = rx_in_frame;
                s.rx_frames = c.frames_ok as u32;
                s.fcs_errors = c.fcs_errors as u32;
                s.aborts = c.aborts as u32;
                s.runts = c.runts as u32;
                s.giants = c.giants as u32;
                s.addr_mismatches = c.address_mismatches as u32;
                s.header_errors = c.header_errors as u32;
                s.tx_frames = self.tx.control.frames_sent as u32;
                s.tx_rejects = self.tx.control.submit_rejects as u32;
            });
            self.synced = image;
        }
        if new_frames {
            self.oam.raise(Interrupt::RxFrame);
        }
        if new_errors {
            self.oam.raise(Interrupt::RxError);
        }
        if tx_done_edge {
            self.oam.raise(Interrupt::TxDone);
        }
    }
}

/// The device's PHY pins as a [`WordStream`]: `offer` is the PHY
/// delivering receive-direction wire bytes, `drain` is the PHY pulling
/// transmit-direction wire bytes.  Neither call clocks the device — the
/// driver loop (or a [`crate::stream::TxStage`]/[`crate::stream::RxStage`]
/// wrapper, which do clock it) stays in charge of time.
impl WordStream for P5 {
    fn offer(&mut self, input: &mut WireBuf) -> Poll {
        Poll::Ready(self.wire_in.move_from(input, usize::MAX))
    }

    fn drain(&mut self, output: &mut WireBuf) -> Poll {
        Poll::Ready(output.move_from(&mut self.wire_out, usize::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oam::{regs, MmioBus, Oam};

    /// Two P⁵s wired back-to-back over a perfect wire.
    fn link_pair(width: DatapathWidth) -> (P5, P5) {
        (P5::new(width), P5::new(width))
    }

    fn shuttle(a: &mut P5, b: &mut P5, cycles: u64) {
        for _ in 0..cycles {
            a.clock();
            b.clock();
            let w = a.take_wire_out();
            b.put_wire_in(&w);
            let w = b.take_wire_out();
            a.put_wire_in(&w);
        }
    }

    #[test]
    fn loopback_delivers_datagrams_w32() {
        let (mut a, mut b) = link_pair(DatapathWidth::W32);
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 50 + i as usize]).collect();
        for p in &payloads {
            a.submit(0x0021, p.clone()).unwrap();
        }
        shuttle(&mut a, &mut b, 2000);
        let got = b.take_received();
        assert_eq!(got.len(), 5);
        for (f, p) in got.iter().zip(&payloads) {
            assert_eq!(&f.payload, p);
            assert_eq!(f.protocol, 0x0021);
        }
        assert_eq!(b.rx_counters().fcs_errors, 0);
    }

    #[test]
    fn loopback_delivers_datagrams_w8() {
        let (mut a, mut b) = link_pair(DatapathWidth::W8);
        a.submit(0x0057, b"ipv6 over the byte pipe".to_vec())
            .unwrap();
        shuttle(&mut a, &mut b, 2000);
        let got = b.take_received();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].protocol, 0x0057);
    }

    #[test]
    fn fused_tx_wire_bytes_match_staged() {
        for width in [DatapathWidth::W8, DatapathWidth::W32] {
            let payloads: Vec<Vec<u8>> = vec![
                b"plain".to_vec(),
                vec![0x7E, 0x7D, 0x20, 0x00, 0x7E],
                (0..=255).collect(),
            ];
            let mut staged = P5::new(width);
            staged.fused_enabled = false;
            for p in &payloads {
                staged.submit(0x0021, p.clone()).unwrap();
            }
            staged.run_until_idle(100_000);
            let mut fused = P5::new(width);
            for p in &payloads {
                assert!(fused.fused_submit_wire(0x0021, p, 0), "fast path eligible");
            }
            assert_eq!(fused.take_wire_out(), staged.take_wire_out());
            assert_eq!(fused.tx.control.frames_sent, 3);
            assert_eq!(fused.tx.escape.frames_stuffed, 3);
            assert_eq!(
                fused.tx.escape.escapes_inserted,
                staged.tx.escape.escapes_inserted
            );
        }
    }

    #[test]
    fn fused_rx_delivers_what_fused_tx_sends() {
        for width in [DatapathWidth::W8, DatapathWidth::W32] {
            let payloads: Vec<Vec<u8>> = vec![
                b"datagram one".to_vec(),
                vec![0x7E, 0x7D, 0x20, 0x00],
                (0..=255).collect(),
            ];
            let mut tx = P5::new(width);
            let mut rx = P5::new(width);
            for p in &payloads {
                assert!(tx.fused_submit_wire(0x0021, p, 0));
            }
            let mut wire = WireBuf::new();
            tx.drain_wire_into(&mut wire);
            let n = wire.len();
            assert_eq!(rx.fused_ingest_wire(&mut wire, usize::MAX), Some(n));
            let got = rx.take_received();
            assert_eq!(
                got.len(),
                payloads.len(),
                "counters: {:?}",
                rx.rx_counters()
            );
            for (f, p) in got.iter().zip(&payloads) {
                assert_eq!(f.protocol, 0x0021);
                assert_eq!(&f.payload, p);
            }
            assert_eq!(rx.rx_counters().fcs_errors, 0);
        }
    }

    #[test]
    fn fused_rx_agrees_with_staged_rx_on_the_same_wire() {
        let mut tx = P5::new(DatapathWidth::W32);
        for i in 0..8u8 {
            tx.submit(0x8021, vec![i ^ 0x7E; 3 + i as usize]).unwrap();
        }
        tx.run_until_idle(100_000);
        let wire = tx.take_wire_out();

        let mut staged = P5::new(DatapathWidth::W32);
        staged.fused_enabled = false;
        staged.put_wire_in(&wire);
        staged.run_until_idle(100_000);
        let mut fused = P5::new(DatapathWidth::W32);
        let mut buf = WireBuf::new();
        buf.push_slice(&wire);
        fused.fused_ingest_wire(&mut buf, usize::MAX);

        let s = staged.take_received();
        let f = fused.take_received();
        assert_eq!(s.len(), 8);
        assert_eq!(s.len(), f.len());
        for (a, b) in s.iter().zip(&f) {
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.payload, b.payload);
        }
        assert_eq!(staged.rx_counters(), fused.rx_counters());
        assert_eq!(
            staged.rx.escape.frames_delineated,
            fused.rx.escape.frames_delineated
        );
        assert_eq!(
            staged.rx.escape.escapes_removed,
            fused.rx.escape.escapes_removed
        );
    }

    #[test]
    fn widths_produce_identical_wire_bytes() {
        let mut w8 = P5::new(DatapathWidth::W8);
        let mut w32 = P5::new(DatapathWidth::W32);
        for p in [&b"alpha"[..], &[0x7E, 0x7D, 0x00, 0x7E][..], &b"omega"[..]] {
            w8.submit(0x0021, p.to_vec()).unwrap();
            w32.submit(0x0021, p.to_vec()).unwrap();
        }
        w8.run_until_idle(100_000);
        w32.run_until_idle(100_000);
        assert_eq!(w8.take_wire_out(), w32.take_wire_out());
    }

    #[test]
    fn required_clock_is_78_mhz_for_both() {
        assert_eq!(DatapathWidth::W8.required_clock_hz(), 78_125_000);
        assert_eq!(DatapathWidth::W32.required_clock_hz(), 78_125_000);
    }

    #[test]
    fn interrupts_fire_on_rx_frame_and_error() {
        let (mut a, mut b) = link_pair(DatapathWidth::W32);
        let mut bus = Oam::new(b.oam.clone());
        bus.write(
            regs::INT_ENABLE,
            Interrupt::RxFrame as u32 | Interrupt::RxError as u32,
        );
        a.submit(0x0021, b"ding".to_vec()).unwrap();
        shuttle(&mut a, &mut b, 500);
        assert!(b.oam.irq_asserted());
        assert_eq!(bus.read(regs::RX_FRAMES), 1);
        bus.write(regs::INT_PENDING, u32::MAX);
        assert!(!b.oam.irq_asserted());

        // Now a corrupted frame.
        a.submit(0x0021, b"to be broken".to_vec()).unwrap();
        a.run_until_idle(10_000);
        let mut wire = a.take_wire_out();
        wire[5] ^= 0x10;
        b.put_wire_in(&wire);
        b.run(500);
        assert_eq!(bus.read(regs::FCS_ERRORS), 1);
        assert!(b.oam.irq_asserted());
    }

    #[test]
    fn reprogramming_address_takes_effect() {
        let (mut a, mut b) = link_pair(DatapathWidth::W32);
        let mut a_bus = Oam::new(a.oam.clone());
        let mut b_bus = Oam::new(b.oam.clone());
        // Switch both stations to MAPOS address 0x05.
        a_bus.write(regs::ADDRESS, 0x05);
        b_bus.write(regs::ADDRESS, 0x05);
        a.submit(0x0021, b"mapos frame".to_vec()).unwrap();
        shuttle(&mut a, &mut b, 500);
        let got = b.take_received();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].address, 0x05);
        assert_eq!(b.rx_counters().address_mismatches, 0);
    }

    #[test]
    fn disabled_receiver_ignores_wire() {
        let (mut a, mut b) = link_pair(DatapathWidth::W32);
        let mut bus = Oam::new(b.oam.clone());
        bus.write(regs::CTRL, ctrl::TX_ENABLE); // rx disabled
        a.submit(0x0021, b"unheard".to_vec()).unwrap();
        shuttle(&mut a, &mut b, 500);
        assert!(b.take_received().is_empty());
    }

    #[test]
    fn tx_done_interrupt_on_drain() {
        let mut a = P5::new(DatapathWidth::W32);
        let mut bus = Oam::new(a.oam.clone());
        bus.write(regs::INT_ENABLE, Interrupt::TxDone as u32);
        a.submit(0x0021, vec![0u8; 64]).unwrap();
        a.run_until_idle(10_000);
        a.clock();
        assert!(a.oam.irq_asserted());
    }

    #[test]
    fn throughput_approaches_width_bytes_per_cycle() {
        // The headline claim: the 32-bit system processes 32 bits every
        // clock cycle (escape-free traffic).
        let mut p = P5::new(DatapathWidth::W32);
        let payload = vec![0x55u8; 1500];
        for _ in 0..20 {
            p.submit(0x0021, payload.clone()).unwrap();
        }
        let cycles = p.run_until_idle(200_000);
        let wire = p.take_wire_out();
        let bpc = wire.len() as f64 / cycles as f64;
        assert!(bpc > 3.5, "bytes/cycle {bpc} too far below 4");
    }

    #[test]
    fn bounded_submit_backpressures_and_counts_rejects() {
        let mut a = P5::new(DatapathWidth::W32);
        a.tx.control.queue_depth = 4;
        for i in 0..4u8 {
            a.submit(0x0021, vec![i; 8]).unwrap();
        }
        let err = a.submit(0x0021, vec![9; 8]).unwrap_err();
        assert_eq!(err.0.payload, vec![9; 8], "descriptor handed back");
        assert_eq!(a.tx.control.submit_rejects, 1);
        assert_eq!(a.tx.control.stats.rejects, 1);
        a.clock();
        let bus = Oam::new(a.oam.clone());
        assert_eq!(bus.read(regs::TX_REJECTS), 1);
        // Once the queue drains, submissions are accepted again.
        a.run_until_idle(10_000);
        a.submit(0x0021, vec![1]).unwrap();
    }

    #[test]
    fn take_wire_out_reuses_recycled_capacity() {
        let mut a = P5::new(DatapathWidth::W32);
        assert!(
            a.take_wire_out().capacity() == 0,
            "empty take allocates nothing"
        );
        a.submit(0x0021, vec![0x42; 256]).unwrap();
        a.run_until_idle(10_000);
        let wire = a.take_wire_out();
        let cap = wire.capacity();
        assert!(cap >= 256);
        a.recycle_wire_vec(wire);
        a.submit(0x0021, vec![0x43; 256]).unwrap();
        a.run_until_idle(10_000);
        assert!(
            a.take_wire_out().capacity() >= cap,
            "recycled storage reused"
        );
    }

    #[test]
    fn trace_events_cover_the_frame_lifecycle() {
        use p5_stream::SharedRecorder;
        let (mut a, mut b) = link_pair(DatapathWidth::W32);
        let rec_a = SharedRecorder::with_capacity(256);
        let rec_b = SharedRecorder::with_capacity(256);
        a.set_trace(Box::new(rec_a.clone()));
        b.set_trace(Box::new(rec_b.clone()));
        a.submit(0x0021, vec![0x11; 40]).unwrap();
        shuttle(&mut a, &mut b, 500);

        let names = |evs: &[Event]| evs.iter().map(|e| e.kind.name()).collect::<Vec<_>>();
        let evs_a = rec_a.events();
        assert_eq!(names(&evs_a), ["submit", "framed", "stuffed", "wire"]);
        assert!(evs_a.iter().all(|e| e.kind.frame_id() == Some(1)));
        assert!(
            evs_a.windows(2).all(|w| w[0].cycle <= w[1].cycle),
            "lifecycle cycles must be monotone: {evs_a:?}"
        );

        let evs_b = rec_b.events();
        assert_eq!(names(&evs_b), ["delineated", "crc_verdict", "delivered"]);
        match evs_b.last().unwrap().kind {
            EventKind::Delivered { id, len } => {
                assert_eq!(id, 1);
                assert_eq!(len, 40);
            }
            other => panic!("expected Delivered, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_frame_traces_a_failed_crc_verdict() {
        use p5_stream::SharedRecorder;
        let (mut a, mut b) = link_pair(DatapathWidth::W32);
        let rec = SharedRecorder::with_capacity(64);
        b.set_trace(Box::new(rec.clone()));
        a.submit(0x0021, b"to be broken".to_vec()).unwrap();
        a.run_until_idle(10_000);
        let mut wire = a.take_wire_out();
        wire[5] ^= 0x10;
        b.put_wire_in(&wire);
        b.run(500);
        let evs = rec.events();
        assert!(evs
            .iter()
            .any(|e| matches!(e.kind, EventKind::CrcVerdict { ok: false, .. })));
        assert!(!evs
            .iter()
            .any(|e| matches!(e.kind, EventKind::Delivered { .. })));
    }

    #[test]
    fn oam_bus_writes_become_trace_events() {
        use p5_stream::SharedRecorder;
        let mut a = P5::new(DatapathWidth::W32);
        let rec = SharedRecorder::with_capacity(16);
        a.set_trace(Box::new(rec.clone()));
        let mut bus = Oam::new(a.oam.clone());
        bus.write(regs::ADDRESS, 0x05);
        a.clock();
        assert!(rec.events().iter().any(|e| matches!(
            e.kind,
            EventKind::OamWrite {
                addr: regs::ADDRESS,
                value: 0x05
            }
        )));
    }

    #[test]
    fn tracing_is_off_by_default_and_null_sink_records_nothing() {
        let (mut a, mut b) = link_pair(DatapathWidth::W32);
        assert!(!a.trace_enabled());
        a.set_trace(Box::new(NullSink));
        assert!(!a.trace_enabled());
        a.submit(0x0021, vec![0x22; 16]).unwrap();
        shuttle(&mut a, &mut b, 500);
        assert_eq!(b.take_received().len(), 1);
    }

    #[test]
    fn duplex_traffic_both_directions() {
        let (mut a, mut b) = link_pair(DatapathWidth::W32);
        a.submit(0x0021, b"a to b".to_vec()).unwrap();
        b.submit(0x0021, b"b to a".to_vec()).unwrap();
        shuttle(&mut a, &mut b, 1000);
        assert_eq!(b.take_received()[0].payload, b"a to b");
        assert_eq!(a.take_received()[0].payload, b"b to a");
    }

    #[test]
    fn max_body_register_is_live() {
        let (mut a, mut b) = link_pair(DatapathWidth::W32);
        let mut bus = Oam::new(b.oam.clone());
        // Default MAX_BODY (1504) passes a 64-byte body.
        a.submit(0x0021, vec![1; 64]).unwrap();
        shuttle(&mut a, &mut b, 1000);
        assert_eq!(b.take_received().len(), 1);
        assert_eq!(bus.read(regs::GIANTS), 0);
        // Shrink the MRU over the bus: the next 64-byte frame must be
        // discarded as a giant (§13.4 — the register is live, not a
        // construction-time constant).
        bus.write(regs::MAX_BODY, 32);
        a.submit(0x0021, vec![2; 64]).unwrap();
        shuttle(&mut a, &mut b, 1000);
        assert!(b.take_received().is_empty(), "frame above MRU delivered");
        assert_eq!(bus.read(regs::GIANTS), 1);
        // Restore: traffic flows again.
        bus.write(regs::MAX_BODY, 1504);
        a.submit(0x0021, vec![3; 64]).unwrap();
        shuttle(&mut a, &mut b, 1000);
        assert_eq!(b.take_received().len(), 1);
    }

    #[test]
    fn oam_error_registers_mirror_the_snapshot_counters() {
        use p5_stream::Observable;
        let (mut a, mut b) = link_pair(DatapathWidth::W32);
        for i in 0..20u8 {
            a.submit(0x0021, vec![i; 40]).unwrap();
        }
        a.run_until_idle(1_000_000);
        let mut wire = a.take_wire_out();
        // Flip a bit every 50 wire bytes: several frames arrive broken
        // (some flips hit flags and produce runts/aborts instead — the
        // mirror must hold for the whole error family).
        for i in (25..wire.len()).step_by(50) {
            wire[i] ^= 0x04;
        }
        b.put_wire_in(&wire);
        b.run_until_idle(1_000_000);
        let bus = Oam::new(b.oam.clone());
        assert!(bus.read(regs::FCS_ERRORS) > 0, "corruption must be counted");
        let snap = Observable::snapshot(&b.rx);
        for (reg, name) in [
            (regs::FCS_ERRORS, "fcs_errors"),
            (regs::ABORTS, "aborts"),
            (regs::RUNTS, "runts"),
            (regs::GIANTS, "giants"),
            (regs::RX_FRAMES, "frames_ok"),
        ] {
            assert_eq!(
                snap.get(name),
                Some(u64::from(bus.read(reg))),
                "OAM and Snapshot views of `{name}` diverged"
            );
        }
    }
}
