//! The Protocol OAM block: "an efficient interface for control and
//! status information to be exchanged between an external
//! microcontroller and the internal Receiver and Transmitter blocks".
//!
//! A memory-mapped register file plus interrupt logic.  The host side
//! (a MicroBlaze in the paper's SoPC vision) talks through the
//! [`MmioBus`] trait; the datapath side updates status and counters
//! through a shared [`OamHandle`].

use parking_lot::RwLock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Register addresses (word-aligned byte offsets).
pub mod regs {
    /// Control register.
    pub const CTRL: u32 = 0x00;
    /// Status register (read-only).
    pub const STATUS: u32 = 0x04;
    /// Programmable HDLC address octet (MAPOS compatibility).
    pub const ADDRESS: u32 = 0x08;
    /// Maximum receive body length.
    pub const MAX_BODY: u32 = 0x0C;
    /// Interrupt enable mask.
    pub const INT_ENABLE: u32 = 0x10;
    /// Interrupt pending (write-1-to-clear).
    pub const INT_PENDING: u32 = 0x14;
    /// Counters (read-only).
    pub const TX_FRAMES: u32 = 0x20;
    pub const RX_FRAMES: u32 = 0x24;
    pub const FCS_ERRORS: u32 = 0x28;
    pub const ABORTS: u32 = 0x2C;
    pub const RUNTS: u32 = 0x30;
    pub const GIANTS: u32 = 0x34;
    pub const ADDR_MISMATCHES: u32 = 0x38;
    pub const HEADER_ERRORS: u32 = 0x3C;
    /// Host submissions refused because the transmit queue was full.
    pub const TX_REJECTS: u32 = 0x40;
}

/// CTRL register bits.
pub mod ctrl {
    /// Enable the transmitter.
    pub const TX_ENABLE: u32 = 1 << 0;
    /// Enable the receiver.
    pub const RX_ENABLE: u32 = 1 << 1;
    /// Accept frames regardless of address.
    pub const PROMISCUOUS: u32 = 1 << 2;
    /// Use FCS-16 instead of FCS-32.
    pub const FCS16: u32 = 1 << 3;
    /// Diagnostic loopback: route the transmitter's wire output straight
    /// into the receiver.
    pub const LOOPBACK: u32 = 1 << 4;
}

/// Interrupt causes (bit positions in INT_ENABLE / INT_PENDING).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Interrupt {
    /// A good frame reached shared memory.
    RxFrame = 1 << 0,
    /// Any receive defect (FCS, abort, runt, giant, header).
    RxError = 1 << 1,
    /// Transmit queue drained.
    TxDone = 1 << 2,
}

/// The raw register state.
#[derive(Debug, Default)]
pub struct OamState {
    pub ctrl: u32,
    pub address: u8,
    pub max_body: u32,
    pub int_enable: u32,
    pub int_pending: u32,
    pub tx_frames: u32,
    pub rx_frames: u32,
    pub fcs_errors: u32,
    pub aborts: u32,
    pub runts: u32,
    pub giants: u32,
    pub addr_mismatches: u32,
    pub header_errors: u32,
    pub tx_rejects: u32,
    /// Datapath-maintained live status bits.
    pub tx_busy: bool,
    pub rx_in_frame: bool,
    /// Recent host bus writes `(addr, value)`, capped at
    /// [`OamState::WRITE_LOG_CAP`]; drained by [`OamHandle::take_writes`]
    /// so a tracing device can stamp them as `OamWrite` events.
    pub write_log: VecDeque<(u32, u32)>,
}

impl OamState {
    /// Bound on the retained bus-write log: old entries are dropped so an
    /// untraced device never accumulates memory.
    pub const WRITE_LOG_CAP: usize = 64;
}

/// Host-side bus interface (the microprocessor interface of Figure 2).
pub trait MmioBus {
    fn read(&self, addr: u32) -> u32;
    fn write(&mut self, addr: u32, value: u32);
}

#[derive(Debug)]
struct OamShared {
    state: RwLock<OamState>,
    /// Bumped on every mutation.  The datapath polls this with one
    /// atomic load per clock and only takes the lock to re-read its
    /// cached configuration when the count moved — registers stay
    /// "live" without a lock acquisition per cycle.
    version: AtomicU64,
}

/// Shared handle to the OAM register file (datapath and host both hold
/// clones; `parking_lot::RwLock` keeps it cheap).
#[derive(Debug, Clone)]
pub struct OamHandle(Arc<OamShared>);

impl Default for OamHandle {
    fn default() -> Self {
        Self::new()
    }
}

impl OamHandle {
    pub fn new() -> Self {
        let state = OamState {
            ctrl: ctrl::TX_ENABLE | ctrl::RX_ENABLE,
            address: 0xFF,
            max_body: 1504,
            ..Default::default()
        };
        Self(Arc::new(OamShared {
            state: RwLock::new(state),
            version: AtomicU64::new(0),
        }))
    }

    /// Mutation counter: changes whenever any register changed.  Read
    /// this *before* `read_state` when caching — a write landing
    /// between the two makes the cache stale-versioned, so it reloads
    /// on the next poll rather than being missed.
    pub fn version(&self) -> u64 {
        self.0.version.load(Ordering::Acquire)
    }

    pub fn read_state<R>(&self, f: impl FnOnce(&OamState) -> R) -> R {
        f(&self.0.state.read())
    }

    pub fn with_state<R>(&self, f: impl FnOnce(&mut OamState) -> R) -> R {
        let r = f(&mut self.0.state.write());
        self.0.version.fetch_add(1, Ordering::Release);
        r
    }

    /// Raise an interrupt cause; it latches into INT_PENDING regardless
    /// of the enable mask (the mask gates the output line).
    pub fn raise(&self, cause: Interrupt) {
        self.with_state(|s| s.int_pending |= cause as u32);
    }

    /// Is the interrupt output line asserted?
    pub fn irq_asserted(&self) -> bool {
        self.read_state(|s| s.int_pending & s.int_enable != 0)
    }

    /// Drain the host bus-write log.  Does *not* bump the version
    /// counter: draining the log is observation, not configuration, and
    /// bumping would make the datapath's config cache reload forever.
    pub fn take_writes(&self) -> Vec<(u32, u32)> {
        let mut s = self.0.state.write();
        s.write_log.drain(..).collect()
    }
}

impl p5_stream::Observable for OamHandle {
    /// The register file's counter view — what a host polling the OAM
    /// over the bus would see.
    fn snapshot(&self) -> p5_stream::Snapshot {
        self.read_state(|s| {
            p5_stream::Snapshot::new("oam")
                .counter("tx_frames", u64::from(s.tx_frames))
                .counter("rx_frames", u64::from(s.rx_frames))
                .counter("fcs_errors", u64::from(s.fcs_errors))
                .counter("aborts", u64::from(s.aborts))
                .counter("runts", u64::from(s.runts))
                .counter("giants", u64::from(s.giants))
                .counter("addr_mismatches", u64::from(s.addr_mismatches))
                .counter("header_errors", u64::from(s.header_errors))
                .counter("tx_rejects", u64::from(s.tx_rejects))
                .counter("int_pending", u64::from(s.int_pending))
        })
    }
}

/// The OAM as seen from the host bus.
pub struct Oam {
    pub handle: OamHandle,
}

impl Oam {
    pub fn new(handle: OamHandle) -> Self {
        Self { handle }
    }
}

impl MmioBus for Oam {
    fn read(&self, addr: u32) -> u32 {
        let s = self.handle.0.state.read();
        match addr {
            regs::CTRL => s.ctrl,
            regs::STATUS => (s.tx_busy as u32) | ((s.rx_in_frame as u32) << 1),
            regs::ADDRESS => s.address as u32,
            regs::MAX_BODY => s.max_body,
            regs::INT_ENABLE => s.int_enable,
            regs::INT_PENDING => s.int_pending,
            regs::TX_FRAMES => s.tx_frames,
            regs::RX_FRAMES => s.rx_frames,
            regs::FCS_ERRORS => s.fcs_errors,
            regs::ABORTS => s.aborts,
            regs::RUNTS => s.runts,
            regs::GIANTS => s.giants,
            regs::ADDR_MISMATCHES => s.addr_mismatches,
            regs::HEADER_ERRORS => s.header_errors,
            regs::TX_REJECTS => s.tx_rejects,
            _ => 0,
        }
    }

    fn write(&mut self, addr: u32, value: u32) {
        self.handle.with_state(|s| {
            match addr {
                regs::CTRL => s.ctrl = value,
                regs::ADDRESS => s.address = value as u8,
                regs::MAX_BODY => s.max_body = value,
                regs::INT_ENABLE => s.int_enable = value,
                // Write-1-to-clear.
                regs::INT_PENDING => s.int_pending &= !value,
                _ => {}
            }
            if s.write_log.len() >= OamState::WRITE_LOG_CAP {
                s.write_log.pop_front();
            }
            s.write_log.push_back((addr, value));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let h = OamHandle::new();
        let oam = Oam::new(h.clone());
        assert_eq!(oam.read(regs::ADDRESS), 0xFF);
        assert_eq!(oam.read(regs::CTRL) & ctrl::TX_ENABLE, ctrl::TX_ENABLE);
        assert_eq!(oam.read(regs::MAX_BODY), 1504);
    }

    #[test]
    fn address_register_is_programmable() {
        let h = OamHandle::new();
        let mut oam = Oam::new(h.clone());
        oam.write(regs::ADDRESS, 0x03); // MAPOS unicast port 1
        assert_eq!(oam.read(regs::ADDRESS), 0x03);
        assert_eq!(h.read_state(|s| s.address), 0x03);
    }

    #[test]
    fn interrupt_latch_and_mask() {
        let h = OamHandle::new();
        let mut oam = Oam::new(h.clone());
        h.raise(Interrupt::RxFrame);
        assert_eq!(oam.read(regs::INT_PENDING), Interrupt::RxFrame as u32);
        assert!(!h.irq_asserted(), "masked by default");
        oam.write(regs::INT_ENABLE, Interrupt::RxFrame as u32);
        assert!(h.irq_asserted());
        // Write-1-to-clear.
        oam.write(regs::INT_PENDING, Interrupt::RxFrame as u32);
        assert!(!h.irq_asserted());
        assert_eq!(oam.read(regs::INT_PENDING), 0);
    }

    #[test]
    fn counters_visible_from_bus() {
        let h = OamHandle::new();
        h.with_state(|s| {
            s.rx_frames = 7;
            s.fcs_errors = 2;
        });
        let oam = Oam::new(h);
        assert_eq!(oam.read(regs::RX_FRAMES), 7);
        assert_eq!(oam.read(regs::FCS_ERRORS), 2);
    }

    #[test]
    fn version_moves_on_every_mutation_path() {
        let h = OamHandle::new();
        let v0 = h.version();
        let mut oam = Oam::new(h.clone());
        oam.write(regs::ADDRESS, 0x03);
        let v1 = h.version();
        assert_ne!(v0, v1, "bus write bumps");
        h.with_state(|s| s.rx_frames += 1);
        let v2 = h.version();
        assert_ne!(v1, v2, "with_state bumps");
        h.raise(Interrupt::RxFrame);
        assert_ne!(v2, h.version(), "raise bumps");
        let _ = oam.read(regs::ADDRESS);
        let _ = h.read_state(|s| s.ctrl);
        assert_eq!(h.version(), h.version(), "reads do not bump");
    }

    #[test]
    fn unknown_addresses_read_zero_and_ignore_writes() {
        let h = OamHandle::new();
        let mut oam = Oam::new(h);
        oam.write(0xFFF0, 0xDEAD);
        assert_eq!(oam.read(0xFFF0), 0);
    }
}
