//! Per-stage instrumentation.
//!
//! `StageStats` moved to the `p5-stream` crate (it instruments generic
//! [`p5_stream::StreamStage`]s and `Stack` boundaries as well as the
//! cycle-accurate stages here); this module re-exports it so existing
//! `p5_core::stats::StageStats` / `p5_core::StageStats` paths keep working.

pub use p5_stream::StageStats;
