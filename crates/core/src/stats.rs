//! Per-stage instrumentation: the observables behind the paper's
//! Figure 5/6 discussion (stalls, buffer occupancy, backpressure).

/// Counters every pipeline stage maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Clock cycles seen.
    pub cycles: u64,
    /// Cycles in which the stage refused input (backpressure asserted
    /// upstream).
    pub stall_cycles: u64,
    /// Words accepted.
    pub words_in: u64,
    /// Words emitted.
    pub words_out: u64,
    /// Payload bytes emitted.
    pub bytes_out: u64,
    /// High-water mark of the internal staging/resynchronisation buffer,
    /// in bytes (or items).
    pub max_occupancy: usize,
    /// Cycles in which the output was starved (nothing to emit while the
    /// sink was ready) — the receive-side "bubbles" of Figure 6.
    pub bubble_cycles: u64,
}

impl StageStats {
    pub fn note_occupancy(&mut self, occ: usize) {
        if occ > self.max_occupancy {
            self.max_occupancy = occ;
        }
    }

    /// Fraction of cycles spent refusing input.
    pub fn stall_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.cycles as f64
        }
    }

    /// Mean output bytes per cycle — the throughput the paper quotes as
    /// "able to process 32 bits every clock cycle".
    pub fn bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bytes_out as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = StageStats {
            cycles: 100,
            stall_cycles: 25,
            bytes_out: 320,
            ..Default::default()
        };
        assert!((s.stall_rate() - 0.25).abs() < 1e-12);
        assert!((s.bytes_per_cycle() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = StageStats::default();
        assert_eq!(s.stall_rate(), 0.0);
        assert_eq!(s.bytes_per_cycle(), 0.0);
    }

    #[test]
    fn occupancy_high_water() {
        let mut s = StageStats::default();
        s.note_occupancy(3);
        s.note_occupancy(9);
        s.note_occupancy(5);
        assert_eq!(s.max_occupancy, 9);
    }
}
