//! The byte-sorting staging store — the heart of the paper's 32-bit
//! escape units.
//!
//! Stuffing turns a 4-byte word into up to 8 bytes; destuffing shrinks
//! it.  The hardware solves the repacking with a combinational byte
//! sorter feeding an "extremely low resynchronisation buffer".  This
//! module is the behavioural model of that buffer: a small ring of
//! tagged bytes from which full output words are re-assembled, with the
//! occupancy observable for the backpressure scheme.

use crate::word::{Word, MAX_LANES};
use std::collections::VecDeque;

/// A staged byte with its frame-delineation tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Staged {
    byte: u8,
    sof: bool,
    eof: bool,
    abort: bool,
}

/// End-of-frame marker that may arrive *after* the last byte already
/// left (receive side: the closing flag is seen a word later).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Item {
    Byte(Staged),
    /// Frame-end strobe with no byte attached.
    End {
        abort: bool,
    },
}

/// Ring buffer of tagged bytes with word-granularity pop.
#[derive(Debug, Clone)]
pub struct ByteStager {
    items: VecDeque<Item>,
    capacity: usize,
}

impl ByteStager {
    pub fn new(capacity: usize) -> Self {
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy in items.
    pub fn occupancy(&self) -> usize {
        self.items.len()
    }

    pub fn free(&self) -> usize {
        self.capacity.saturating_sub(self.items.len())
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Push one byte with tags.  Panics on overflow — callers must gate
    /// pushes on [`free`](Self::free) (that gate *is* the backpressure).
    pub fn push_byte(&mut self, byte: u8, sof: bool, eof: bool) {
        assert!(
            self.items.len() < self.capacity,
            "resynchronisation buffer overflow — backpressure failed"
        );
        self.items.push_back(Item::Byte(Staged {
            byte,
            sof,
            eof,
            abort: false,
        }));
    }

    /// Push a byte-less end-of-frame strobe.
    pub fn push_end(&mut self, abort: bool) {
        assert!(self.items.len() < self.capacity, "staging overflow");
        self.items.push_back(Item::End { abort });
    }

    /// Mark the most recently pushed byte as end-of-frame, if there is
    /// one and it is a byte (transmit side knows eof at push time;
    /// receive side retro-tags on seeing the closing flag).
    pub fn tag_last_eof(&mut self) -> bool {
        if let Some(Item::Byte(s)) = self.items.back_mut() {
            s.eof = true;
            true
        } else {
            false
        }
    }

    /// Try to pop one output word of up to `width` lanes.
    ///
    /// Words never span frames: popping stops after an `eof` byte, and a
    /// pending `sof` byte never joins a word that already has content.
    /// A full word is emitted eagerly; a partial word only when it
    /// carries `eof` (or `force` is set — final flush).
    pub fn pop_word(&mut self, width: usize, force: bool) -> Option<Word> {
        debug_assert!(width <= MAX_LANES);
        // Decide whether a word is ready before mutating.
        let mut count = 0usize;
        let mut complete = false;
        for it in self.items.iter() {
            match it {
                Item::Byte(s) => {
                    if count > 0 && s.sof {
                        complete = true; // frame boundary before this byte
                        break;
                    }
                    count += 1;
                    if s.eof || count == width {
                        complete = true;
                        break;
                    }
                }
                Item::End { .. } => {
                    complete = true;
                    break;
                }
            }
        }
        if count == 0 {
            // Only a dangling End strobe can produce an empty eof word.
            if let Some(Item::End { abort }) = self.items.front().copied() {
                self.items.pop_front();
                return Some(Word {
                    eof: true,
                    abort,
                    ..Default::default()
                });
            }
            return None;
        }
        if !complete && !force {
            return None;
        }

        let mut word = Word::default();
        for lane in 0..count {
            match self.items.pop_front() {
                Some(Item::Byte(s)) => {
                    word.bytes[lane] = s.byte;
                    word.len += 1;
                    if s.sof {
                        word.sof = true;
                    }
                    if s.eof {
                        word.eof = true;
                        word.abort |= s.abort;
                    }
                }
                _ => unreachable!("counted bytes above"),
            }
        }
        // Absorb an immediately following End strobe into this word.
        if !word.eof {
            if let Some(Item::End { abort }) = self.items.front().copied() {
                self.items.pop_front();
                word.eof = true;
                word.abort = abort;
            }
        }
        Some(word)
    }

    /// Pop every currently-complete word straight into a caller-provided
    /// [`p5_stream::WireBuf`], carrying the SOF/EOF/abort tags across as
    /// tagged lanes.  This is the batched egress path: one call empties
    /// the stager without intermediate `Word` shuttling by the caller.
    /// Returns the number of bytes moved.
    pub fn pop_words_into(
        &mut self,
        width: usize,
        force: bool,
        out: &mut p5_stream::WireBuf,
    ) -> usize {
        let mut moved = 0;
        while let Some(w) = self.pop_word(width, force) {
            out.push_tagged(w.lanes(), w.sof, w.eof, w.abort);
            moved += w.lanes().len();
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_frame(s: &mut ByteStager, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            s.push_byte(b, i == 0, i == bytes.len() - 1);
        }
    }

    #[test]
    fn full_words_pop_eagerly() {
        let mut s = ByteStager::new(32);
        push_frame(&mut s, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let w = s.pop_word(4, false).unwrap();
        assert_eq!(w.lanes(), &[1, 2, 3, 4]);
        assert!(w.sof && !w.eof);
        let w = s.pop_word(4, false).unwrap();
        assert_eq!(w.lanes(), &[5, 6, 7, 8]);
        assert!(!w.sof && w.eof);
        assert!(s.pop_word(4, false).is_none());
    }

    #[test]
    fn partial_word_waits_unless_eof_or_forced() {
        let mut s = ByteStager::new(32);
        s.push_byte(9, true, false);
        s.push_byte(8, false, false);
        assert!(
            s.pop_word(4, false).is_none(),
            "mid-frame partial must wait"
        );
        assert_eq!(s.pop_word(4, true).unwrap().lanes(), &[9, 8]);
    }

    #[test]
    fn eof_terminates_word_early() {
        let mut s = ByteStager::new(32);
        push_frame(&mut s, &[1, 2]);
        push_frame(&mut s, &[3, 4, 5, 6]);
        let w = s.pop_word(4, false).unwrap();
        assert_eq!(w.lanes(), &[1, 2]);
        assert!(w.sof && w.eof, "frame of 2 bytes in one word");
        let w = s.pop_word(4, false).unwrap();
        assert_eq!(w.lanes(), &[3, 4, 5, 6]);
        assert!(w.sof && w.eof);
    }

    #[test]
    fn words_never_span_frames() {
        let mut s = ByteStager::new(32);
        push_frame(&mut s, &[1, 2, 3]);
        push_frame(&mut s, &[4, 5, 6, 7]);
        let w = s.pop_word(4, false).unwrap();
        assert_eq!(w.lanes(), &[1, 2, 3]);
        assert!(w.eof);
        let w = s.pop_word(4, false).unwrap();
        assert_eq!(w.lanes(), &[4, 5, 6, 7]);
        assert!(w.sof);
    }

    #[test]
    fn end_strobe_yields_empty_eof_word() {
        let mut s = ByteStager::new(32);
        s.push_byte(1, true, false);
        s.push_byte(2, false, false);
        s.push_byte(3, false, false);
        s.push_byte(4, false, false);
        s.push_end(false);
        let w = s.pop_word(4, false).unwrap();
        assert_eq!(w.lanes(), &[1, 2, 3, 4]);
        assert!(w.eof, "end strobe right after a full word folds into it");
        assert!(s.pop_word(4, false).is_none());
    }

    #[test]
    fn detached_end_strobe_emits_len_zero_word() {
        let mut s = ByteStager::new(32);
        s.push_end(true);
        let w = s.pop_word(4, false).unwrap();
        assert_eq!(w.len, 0);
        assert!(w.eof && w.abort);
    }

    #[test]
    fn retro_tagging_eof() {
        let mut s = ByteStager::new(32);
        s.push_byte(7, true, false);
        assert!(s.tag_last_eof());
        let w = s.pop_word(4, false).unwrap();
        assert!(w.eof);
        assert!(!s.tag_last_eof(), "nothing left to tag");
    }

    #[test]
    #[should_panic(expected = "backpressure failed")]
    fn overflow_panics() {
        let mut s = ByteStager::new(2);
        s.push_byte(1, false, false);
        s.push_byte(2, false, false);
        s.push_byte(3, false, false);
    }

    #[test]
    fn occupancy_tracking() {
        let mut s = ByteStager::new(8);
        assert_eq!(s.free(), 8);
        push_frame(&mut s, &[1, 2, 3]);
        assert_eq!(s.occupancy(), 3);
        assert_eq!(s.free(), 5);
        s.pop_word(4, false);
        assert!(s.is_empty());
    }

    #[test]
    fn pop_words_into_carries_tags_into_wirebuf() {
        let mut s = ByteStager::new(32);
        push_frame(&mut s, &[1, 2, 3, 4, 5]);
        push_frame(&mut s, &[6, 7]);
        let mut out = p5_stream::WireBuf::new();
        let moved = s.pop_words_into(4, false, &mut out);
        assert_eq!(moved, 7);
        assert!(s.is_empty());
        assert_eq!(out.frames_ready(), 2);
        assert_eq!(out.pop_frame().unwrap().0, vec![1, 2, 3, 4, 5]);
        assert_eq!(out.pop_frame().unwrap().0, vec![6, 7]);
    }

    #[test]
    fn width_one_datapath() {
        let mut s = ByteStager::new(8);
        push_frame(&mut s, &[0xAA, 0xBB]);
        let w = s.pop_word(1, false).unwrap();
        assert_eq!(w.lanes(), &[0xAA]);
        assert!(w.sof && !w.eof);
        let w = s.pop_word(1, false).unwrap();
        assert_eq!(w.lanes(), &[0xBB]);
        assert!(w.eof);
    }
}
