//! The datapath word: what travels down the pipeline each clock.

/// Maximum lane count (the 32-bit datapath).
pub const MAX_LANES: usize = 4;

/// One pipeline word: up to four byte lanes plus frame-delineation
/// sideband signals (the control signals running alongside the data bus
/// in the hardware design).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Word {
    pub bytes: [u8; MAX_LANES],
    /// Valid byte count, 0..=width.  Words inside a frame are full; the
    /// last word of a frame (and an end-strobe word) may be partial or
    /// even empty.
    pub len: u8,
    /// First word of a frame.
    pub sof: bool,
    /// Last word of a frame.
    pub eof: bool,
    /// Frame was aborted on the wire (receive side).
    pub abort: bool,
    /// FCS verdict, annotated by the CRC stage on the `eof` word.
    pub crc_ok: Option<bool>,
}

impl Word {
    /// Build a data word from a slice (≤ 4 bytes).
    pub fn data(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= MAX_LANES);
        let mut w = Word {
            len: bytes.len() as u8,
            ..Default::default()
        };
        w.bytes[..bytes.len()].copy_from_slice(bytes);
        w
    }

    /// The valid lanes.
    pub fn lanes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    pub fn with_sof(mut self) -> Self {
        self.sof = true;
        self
    }

    pub fn with_eof(mut self) -> Self {
        self.eof = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lanes() {
        let w = Word::data(&[1, 2, 3]).with_sof();
        assert_eq!(w.lanes(), &[1, 2, 3]);
        assert_eq!(w.len, 3);
        assert!(w.sof && !w.eof);
    }

    #[test]
    fn empty_word_is_legal() {
        // A zero-length eof word is the end-of-frame strobe case.
        let w = Word::data(&[]).with_eof();
        assert_eq!(w.lanes(), &[] as &[u8]);
        assert!(w.eof);
    }

    #[test]
    #[should_panic]
    fn oversized_word_panics() {
        Word::data(&[0; 5]);
    }
}
