//! Fixed-length pipeline delay line.
//!
//! The escape units model their internal pipelining ("output data is
//! therefore delayed by 4 clock cycles") with a short shift register of
//! `Option<Word>` slots.  A ring over a fixed array keeps the per-clock
//! shift to a couple of loads, and a live-word count makes the idle
//! test O(1) — the driver loop and the OAM mirror each consult it every
//! simulated cycle.

use crate::word::Word;

/// A `len`-deep shift register of optional words.
#[derive(Debug, Clone)]
pub struct DelayLine {
    slots: [Option<Word>; Self::MAX],
    head: u8,
    len: u8,
    live: u8,
}

impl DelayLine {
    /// Longest delay any configuration needs (4-stage units → 3 slots).
    pub const MAX: usize = 4;

    pub fn new(len: usize) -> Self {
        assert!(
            len <= Self::MAX,
            "delay line longer than {} slots",
            Self::MAX
        );
        Self {
            slots: [None; Self::MAX],
            head: 0,
            len: len as u8,
            live: 0,
        }
    }

    /// One clock: insert `fresh`, emit what was inserted `len` clocks
    /// ago.  A zero-length line is a wire.
    #[inline]
    pub fn shift(&mut self, fresh: Option<Word>) -> Option<Word> {
        if self.len == 0 {
            return fresh;
        }
        let i = self.head as usize;
        let out = self.slots[i].take();
        self.live += u8::from(fresh.is_some());
        self.live -= u8::from(out.is_some());
        self.slots[i] = fresh;
        self.head += 1;
        if self.head == self.len {
            self.head = 0;
        }
        out
    }

    /// No words in flight.
    #[inline]
    pub fn is_clear(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(tag: u8) -> Word {
        Word::data(&[tag])
    }

    #[test]
    fn zero_length_is_a_wire() {
        let mut d = DelayLine::new(0);
        assert!(d.is_clear());
        assert_eq!(d.shift(Some(w(7))).unwrap().bytes[0], 7);
        assert!(d.is_clear());
    }

    #[test]
    fn delays_by_len_and_tracks_live_words() {
        let mut d = DelayLine::new(3);
        assert_eq!(d.shift(Some(w(1))), None);
        assert!(!d.is_clear());
        assert_eq!(d.shift(None), None);
        assert_eq!(d.shift(Some(w(2))), None);
        assert_eq!(d.shift(None).unwrap().bytes[0], 1);
        assert_eq!(d.shift(None), None);
        assert_eq!(d.shift(None).unwrap().bytes[0], 2);
        assert!(d.is_clear());
    }

    #[test]
    fn matches_vecdeque_reference() {
        use std::collections::VecDeque;
        for len in 0..=DelayLine::MAX {
            let mut fast = DelayLine::new(len);
            let mut reference: VecDeque<Option<Word>> = VecDeque::from(vec![None; len]);
            for i in 0..64u32 {
                let fresh = if i % 3 == 0 { Some(w(i as u8)) } else { None };
                reference.push_back(fresh);
                let want = reference.pop_front().flatten();
                assert_eq!(fast.shift(fresh), want, "len {len} step {i}");
                assert_eq!(
                    fast.is_clear(),
                    reference.iter().all(Option::is_none),
                    "len {len} step {i}"
                );
            }
        }
    }
}
