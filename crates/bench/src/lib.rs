//! Shared workload generators and report formatting for the benchmark
//! harness — one binary per paper table/figure (see DESIGN.md §4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a payload of `len` bytes where each byte is a flag/escape
/// character with probability `density` (the Figure 5/6 sweep axis).
pub fn payload_with_flag_density(len: usize, density: f64, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            if rng.gen_bool(density) {
                if rng.gen_bool(0.5) {
                    0x7E
                } else {
                    0x7D
                }
            } else {
                // Re-draw until we get a non-special byte so density is
                // exact, not approximate.
                loop {
                    let b: u8 = rng.gen();
                    if b != 0x7E && b != 0x7D {
                        break b;
                    }
                }
            }
        })
        .collect()
}

/// A plausible IPv4 datagram payload: header-ish bytes then body.
pub fn ip_like_datagram(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Vec::with_capacity(len);
    d.push(0x45); // version/IHL
    d.push(0x00);
    d.extend_from_slice(&(len as u16).to_be_bytes());
    while d.len() < len {
        d.push(rng.gen());
    }
    d.truncate(len);
    d
}

/// Internet-mix frame sizes (the classic trimodal distribution).
pub fn imix_sizes(count: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| match rng.gen_range(0..12) {
            0..=6 => 40,   // ~58% small
            7..=10 => 576, // ~33% medium
            _ => 1500,     // ~9% full MTU
        })
        .collect()
}

/// Render a separator + title like the paper's table captions.
pub fn heading(title: &str) -> String {
    format!("\n{}\n{}\n", title, "=".repeat(title.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_zero_has_no_specials() {
        let p = payload_with_flag_density(10_000, 0.0, 1);
        assert!(p.iter().all(|&b| b != 0x7E && b != 0x7D));
    }

    #[test]
    fn density_one_is_all_specials() {
        let p = payload_with_flag_density(1_000, 1.0, 2);
        assert!(p.iter().all(|&b| b == 0x7E || b == 0x7D));
    }

    #[test]
    fn density_half_is_roughly_half() {
        let p = payload_with_flag_density(100_000, 0.5, 3);
        let specials = p.iter().filter(|&&b| b == 0x7E || b == 0x7D).count();
        assert!((40_000..60_000).contains(&specials));
    }

    #[test]
    fn imix_is_trimodal() {
        let sizes = imix_sizes(1000, 4);
        assert!(sizes.iter().all(|s| [40, 576, 1500].contains(s)));
        assert!(sizes.iter().filter(|&&s| s == 40).count() > 300);
    }

    #[test]
    fn ip_like_has_requested_length() {
        assert_eq!(ip_like_datagram(100, 7).len(), 100);
        assert_eq!(ip_like_datagram(4, 7).len(), 4);
    }
}
