//! Gate-level simulation speed: the scalar netlist walker (`Sim`)
//! versus the compiled bit-parallel engine (`CompiledSim`), which
//! evaluates 64 stimulus lanes per pass.
//!
//! Both engines are driven with the identical pseudorandom stimulus
//! schedule on every shipped netlist; the kernel cost of an eval/step
//! pass does not depend on the stimulus values, so broadcasting one
//! vector across the lanes measures the same work as 64 distinct
//! vectors (the equivalence tests cover lane independence).
//!
//! Writes `results/BENCH_gate_sim.json`.  With `--min-x64 <factor>`
//! the run fails (exit 1) when the 32-bit system aggregate ×64 speedup
//! drops below the floor — the regression gate `scripts/check.sh` pins.

use std::fmt::Write as _;
use std::time::Instant;

use p5_bench::heading;
use p5_fpga::{CompiledSim, Netlist, Sim, LANES};
use p5_lint::shipped_netlists;

/// Cheap deterministic stimulus (xorshift64*): both engines replay the
/// same schedule.
struct Stim(u64);

impl Stim {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Wall time for `cycles` clocks of the scalar walker.
fn run_scalar(n: &Netlist, cycles: usize, seed: u64) -> f64 {
    let mut sim = Sim::new(n);
    let ports: Vec<_> = n.inputs.iter().map(|b| sim.in_port(&b.name)).collect();
    let mut stim = Stim(seed);
    let t = Instant::now();
    for _ in 0..cycles {
        for &p in &ports {
            sim.set_port(p, stim.next());
        }
        sim.step();
    }
    t.elapsed().as_secs_f64()
}

/// Wall time for `cycles` clocks of the compiled 64-lane engine.
fn run_compiled(cs: &mut CompiledSim, inputs: &[String], cycles: usize, seed: u64) -> f64 {
    let ports: Vec<_> = inputs.iter().map(|name| cs.in_port(name)).collect();
    let mut stim = Stim(seed);
    let t = Instant::now();
    for _ in 0..cycles {
        for &p in &ports {
            cs.set(p, stim.next());
        }
        cs.step();
    }
    t.elapsed().as_secs_f64()
}

/// Best-of-reps with short sleeps in between, riding out the throttle
/// windows of shared hosts (same scheme as `throughput_report`).
fn best_of<F: FnMut() -> f64>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..=3 {
        let wall = f();
        if rep > 0 {
            best = best.min(wall);
        }
        std::thread::sleep(std::time::Duration::from_millis(15));
    }
    best
}

fn arg_value(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let min_x64 = arg_value(&args, "--min-x64");
    let cycles = if smoke { 512 } else { 4096 };
    print!(
        "{}",
        heading("Gate-level simulation - scalar walker vs compiled 64-lane engine")
    );
    println!(
        "{:<30} {:>7} {:>6} {:>12} {:>12} {:>9} {:>9}",
        "module", "nodes", "tape", "scalar us/c", "comp us/c", "x1", "x64"
    );

    // The 32-bit datapath's modules: their aggregate is the headline
    // number (how much faster the whole system simulates).
    let system32: Vec<String> = p5_rtl::system_modules(4)
        .iter()
        .map(|n| n.name.clone())
        .collect();
    let mut sys_scalar = 0.0f64;
    let mut sys_compiled = 0.0f64;

    let mut rows = String::new();
    for n in shipped_netlists() {
        let mut cs = CompiledSim::compile(&n);
        let input_names: Vec<String> = n.inputs.iter().map(|b| b.name.clone()).collect();
        let scalar = best_of(|| run_scalar(&n, cycles, 2003));
        let compiled = best_of(|| run_compiled(&mut cs, &input_names, cycles, 2003));
        let x1 = scalar / compiled;
        let x64 = x1 * LANES as f64;
        if system32.iter().any(|m| m == &n.name) {
            sys_scalar += scalar;
            sys_compiled += compiled;
        }
        println!(
            "{:<30} {:>7} {:>6} {:>12.2} {:>12.2} {:>8.1}x {:>8.0}x",
            n.name,
            n.nodes.len(),
            cs.tape_len(),
            scalar / cycles as f64 * 1e6,
            compiled / cycles as f64 * 1e6,
            x1,
            x64,
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"module\": \"{}\", \"nodes\": {}, \"tape_len\": {}, \
             \"scalar_us_per_cycle\": {:.3}, \"compiled_us_per_cycle\": {:.3}, \
             \"speedup_x1\": {:.2}, \"speedup_x64\": {:.1}}}",
            n.name,
            n.nodes.len(),
            cs.tape_len(),
            scalar / cycles as f64 * 1e6,
            compiled / cycles as f64 * 1e6,
            x1,
            x64,
        );
    }

    let sys_x64 = sys_scalar / sys_compiled * LANES as f64;
    println!(
        "\n32-bit system aggregate: scalar {:.1} ms vs compiled {:.1} ms \
         over {cycles} cycles => x64 speedup {:.0}x",
        sys_scalar * 1e3,
        sys_compiled * 1e3,
        sys_x64,
    );

    let json = format!(
        "{{\n  \"bench\": \"gate_sim\",\n  \"smoke\": {smoke},\n  \
         \"cycles\": {cycles},\n  \"lanes\": {LANES},\n  \
         \"system32_speedup_x64\": {sys_x64:.1},\n  \"rows\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_gate_sim.json", &json).expect("write results/");
    println!("wrote results/BENCH_gate_sim.json");

    if let Some(floor) = min_x64 {
        if sys_x64 < floor {
            eprintln!("REGRESSION: 32-bit system x64 speedup {sys_x64:.1} below floor {floor}");
            std::process::exit(1);
        }
    }
}
