//! Live observability report — the p5-obs layer exercised at fleet
//! scale, with hard gates.
//!
//! Three experiments:
//!
//! 1. **Sampling overhead** — a 256-link fleet runs the same workload
//!    plain (`Fleet::run_until_drained`) and with a [`Collector`]
//!    attached and sampling at its default cadence; the active
//!    collector must cost at most `--max-sampling-overhead-pct`
//!    (default 25%) wall time.
//! 2. **Health-detection latency** — one link of a 256-link fleet is
//!    seeded with a BER burst (`fault_links`); the collector must
//!    report it Degraded within the documented detection budget
//!    (`HealthPolicy::detection_budget_ticks`), measured *live*: the
//!    run is still in progress when the HTTP endpoint is scraped over
//!    real TCP.
//! 3. **Flight-recorder completeness** — the seeded link's post-mortem
//!    must hold all four entry kinds (trigger, sample, transition,
//!    device), i.e. the freeze captured the window around the event.
//!
//! Writes `results/BENCH_obs.json`; any gate failure exits 1.
//! `--smoke` shrinks the overhead workload for CI.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Instant;

use p5_bench::heading;
use p5_fault::FaultSpec;
use p5_obs::{serve, Collector, CollectorConfig, HealthState};
use p5_runtime::{Fleet, FleetConfig, TrafficSpec};

const LINKS: usize = 256;
const BAD_LINK: usize = 17;

fn clean_fleet(ticks: u64) -> Fleet {
    Fleet::new(FleetConfig {
        links: LINKS,
        traffic: Some(TrafficSpec {
            frames_per_tick: 1,
            ticks,
            ..TrafficSpec::default()
        }),
        ..FleetConfig::default()
    })
    .expect("fleet builds")
}

fn faulted_fleet(ticks: u64) -> Fleet {
    Fleet::new(FleetConfig {
        links: LINKS,
        fault: Some(FaultSpec {
            ber: 5e-3,
            ..FaultSpec::default()
        }),
        fault_links: Some(vec![BAD_LINK]),
        trace_links: vec![BAD_LINK],
        seed: 0xD00D,
        traffic: Some(TrafficSpec {
            frames_per_tick: 1,
            ticks,
            ..TrafficSpec::default()
        }),
        ..FleetConfig::default()
    })
    .expect("fleet builds")
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect scrape endpoint");
    s.write_all(format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .expect("write request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    out
}

fn arg_value(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let max_sampling_overhead_pct = arg_value(&args, "--max-sampling-overhead-pct").unwrap_or(25.0);
    let max_detect_ticks = arg_value(&args, "--max-detect-ticks");

    print!(
        "{}",
        heading("Obs report - sampling overhead, live health detection, flight recorder")
    );
    let mut gate_failures: Vec<String> = Vec::new();

    // 1. Sampling overhead: plain drive vs an actively sampling collector.
    let (ticks, reps) = if smoke { (600, 3) } else { (4_000, 5) };
    let mut plain = f64::INFINITY;
    for _ in 0..reps {
        let mut fleet = clean_fleet(ticks);
        let started = Instant::now();
        fleet.run_until_drained(ticks * 4);
        plain = plain.min(started.elapsed().as_secs_f64());
    }
    let mut sampled = f64::INFINITY;
    for _ in 0..reps {
        let mut fleet = clean_fleet(ticks);
        let mut collector = Collector::new(CollectorConfig::default());
        let started = Instant::now();
        collector.watch(&mut fleet, ticks * 4);
        sampled = sampled.min(started.elapsed().as_secs_f64());
    }
    let overhead_pct = 100.0 * (sampled - plain) / plain;
    println!(
        "sampling overhead ({LINKS} links, {ticks} traffic ticks): plain {:.1} ms, \
         collector@64 {:.1} ms ({overhead_pct:+.2}%)",
        plain * 1e3,
        sampled * 1e3
    );
    if overhead_pct > max_sampling_overhead_pct {
        gate_failures.push(format!(
            "active sampling costs {overhead_pct:.2}% wall (gate {max_sampling_overhead_pct}%)"
        ));
    }

    // 2. Live health detection on a seeded fault burst.
    let every = 32u64;
    let mut fleet = faulted_fleet(4_000);
    let mut collector = Collector::new(CollectorConfig {
        every,
        ..CollectorConfig::default()
    });
    let budget = collector.config().policy.detection_budget_ticks(every);
    let server = serve(collector.hub(), "127.0.0.1:0").expect("bind scrape endpoint");
    let addr = server.addr();
    collector.watch(&mut fleet, 512);
    let live = !fleet.is_idle();
    let detect = collector
        .transitions()
        .iter()
        .find(|t| t.link == BAD_LINK && t.to == HealthState::Degraded)
        .map(|t| t.tick);
    let gate_ticks = max_detect_ticks.map_or(budget, |v| v as u64);
    match detect {
        Some(t) => {
            println!(
                "health detection: link {BAD_LINK} Degraded at tick {t} \
                 (budget {budget}, gate {gate_ticks}, run still live: {live})"
            );
            if t > gate_ticks {
                gate_failures.push(format!(
                    "Degraded detected at tick {t}, over the {gate_ticks}-tick gate"
                ));
            }
        }
        None => gate_failures.push(format!(
            "seeded link {BAD_LINK} never reported Degraded within 512 ticks"
        )),
    }
    if !live {
        gate_failures.push("fleet drained before the live scrape (not a live detection)".into());
    }

    // The scrape happens mid-run, over real TCP.
    let metrics = http_get(addr, "/metrics");
    let health = http_get(addr, "/health");
    let metrics_lines = metrics.lines().count();
    let scrape_ok = metrics.starts_with("HTTP/1.1 200 OK\r\n")
        && metrics.contains(&format!("p5_obs_link_health{{link=\"{BAD_LINK}\"}}"))
        && metrics.contains("p5_obs_health_links{state=\"degraded\"}")
        && health.contains(&format!("\"link\":{BAD_LINK}"));
    println!("live scrape: ok={scrape_ok}, /metrics payload {metrics_lines} lines");
    if !scrape_ok {
        gate_failures.push("live /metrics-/health scrape missing the degraded link".into());
    }

    // Let the run advance past the scrape, then freeze-check the recorder.
    collector.watch(&mut fleet, 512);
    let pm = collector.postmortem(BAD_LINK).unwrap_or_default();
    let kinds = ["trigger", "sample", "transition", "device"];
    let present = kinds
        .iter()
        .filter(|k| pm.contains(&format!("\"kind\":\"{k}\"")))
        .count();
    let completeness = present as f64 / kinds.len() as f64;
    println!(
        "flight recorder: {present}/{} entry kinds captured (completeness {completeness:.2})",
        kinds.len()
    );
    if completeness < 1.0 {
        let missing: Vec<&str> = kinds
            .iter()
            .filter(|k| !pm.contains(&format!("\"kind\":\"{k}\"")))
            .copied()
            .collect();
        gate_failures.push(format!(
            "flight post-mortem incomplete: missing {missing:?}"
        ));
    }
    server.stop();

    let json = format!(
        "{{\n  \"bench\": \"obs\",\n  \"smoke\": {smoke},\n  \
         \"sampling\": {{\"links\": {LINKS}, \"traffic_ticks\": {ticks}, \"reps\": {reps}, \
         \"plain_wall_s\": {plain:.6}, \"sampled_wall_s\": {sampled:.6}, \
         \"overhead_pct\": {overhead_pct:.2}, \"gate_pct\": {max_sampling_overhead_pct}}},\n  \
         \"detection\": {{\"links\": {LINKS}, \"seeded_link\": {BAD_LINK}, \
         \"every_ticks\": {every}, \"budget_ticks\": {budget}, \"gate_ticks\": {gate_ticks}, \
         \"detected_tick\": {}, \"live_at_scrape\": {live}, \
         \"scrape_ok\": {scrape_ok}, \"metrics_lines\": {metrics_lines}}},\n  \
         \"flight\": {{\"kinds_present\": {present}, \"kinds_expected\": {}, \
         \"completeness\": {completeness:.2}}}\n}}\n",
        detect.map_or("null".to_string(), |t| t.to_string()),
        kinds.len()
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_obs.json", &json).expect("write results/");
    println!("\nwrote results/BENCH_obs.json");

    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}
