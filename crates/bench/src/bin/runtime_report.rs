//! Carrier-scale runtime report: aggregate throughput and p99 frame
//! latency as the fleet grows from one link to ten thousand.
//!
//! The tentpole claim of `p5-runtime` is that the fused single-link
//! fast path *composes*: shard N independent links across a worker
//! pool and the aggregate simulation speed scales past any single
//! link.  This report measures that — a link-count sweep on the raw
//! carrier (every worker core in play), one work-stealing vs static
//! sharding comparison, and one channelized-STM-4 realism row —
//! writing `results/BENCH_runtime.json` for `scripts/check.sh` to gate
//! on:
//!
//! * `--min-uplift <x>`: best aggregate Gbps at ≥ 64 links must be at
//!   least `x` times the single-link row (enforced only when the host
//!   has ≥ 4 cores — below that, the scaling claim is vacuous);
//! * `--max-p99-ticks <n>`: p99 submit→delivery latency ceiling on
//!   every uncongested sweep row;
//! * conservation is always enforced: an uncongested fleet must
//!   deliver every offered frame (zero shed, zero rejected, zero
//!   lost).
//!
//! With `--smoke` the report sweeps a reduced link set with a smaller
//! payload budget (suitable for CI) and still writes the same JSON.

use std::fmt::Write as _;
use std::time::Instant;

use p5_bench::heading;
use p5_runtime::{Carrier, Fleet, FleetConfig, Sharding, TrafficSpec};
use p5_sonet::StmLevel;

/// Payload octets per frame across the whole report.
const PAYLOAD_LEN: usize = 1024;
/// Frames offered per link per tick.
const FRAMES_PER_TICK: u32 = 4;

struct RowMeasure {
    workers: usize,
    wall_s: f64,
    aggregate_gbps: f64,
    p99_latency_ticks: Option<u64>,
    delivered: u64,
    ticks: u64,
}

/// Offered ticks per link so the whole fleet moves ≈ `budget` payload
/// octets regardless of link count (floor of 2 ticks keeps the biggest
/// fleets honest).
fn ticks_for(links: usize, budget: usize) -> u64 {
    let per_tick = links * FRAMES_PER_TICK as usize * PAYLOAD_LEN;
    ((budget / per_tick.max(1)) as u64).max(2)
}

/// Run one fleet shape to drain, `reps` times (first is construction +
/// cache warm-up, discarded), keeping the best wall time.  The workload
/// is deterministic, so only the clock varies between reps.
fn measure(cfg: &FleetConfig, reps: usize) -> RowMeasure {
    let mut best = f64::INFINITY;
    let mut out: Option<RowMeasure> = None;
    for rep in 0..reps {
        let mut fleet = Fleet::new(cfg.clone()).expect("valid fleet config");
        let started = Instant::now();
        assert!(fleet.run_until_drained(u64::MAX), "fleet failed to drain");
        let wall = started.elapsed().as_secs_f64();
        let st = fleet.stats();
        // The always-on conservation gate: uncongested fleets lose
        // nothing, anywhere, at any scale.
        assert_eq!(st.flow.shed, 0, "uncongested fleet shed frames");
        assert_eq!(st.flow.rejected, 0, "uncongested fleet rejected frames");
        assert_eq!(
            st.flow.delivered, st.flow.accepted,
            "accepted frames went missing"
        );
        assert_eq!(st.flow.offered, st.flow.accepted);
        if rep == 0 {
            continue;
        }
        if wall < best {
            best = wall;
            out = Some(RowMeasure {
                workers: st.workers,
                wall_s: wall,
                aggregate_gbps: st.flow.delivered_bytes as f64 * 8.0 / wall / 1e9,
                p99_latency_ticks: st.p99_latency_ticks(),
                delivered: st.flow.delivered,
                ticks: st.ticks,
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(40));
    }
    out.expect("at least two reps")
}

fn sweep_config(links: usize, budget: usize, sharding: Sharding, carrier: Carrier) -> FleetConfig {
    FleetConfig {
        links,
        workers: 0, // one per available core
        carrier,
        sharding,
        seed: 42,
        traffic: Some(TrafficSpec {
            frames_per_tick: FRAMES_PER_TICK,
            payload_len: PAYLOAD_LEN,
            duplex: false,
            ticks: ticks_for(links, budget),
            ..TrafficSpec::default()
        }),
        ..FleetConfig::default()
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let min_uplift = arg_value(&args, "--min-uplift");
    let max_p99 = arg_value(&args, "--max-p99-ticks");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (link_counts, budget, reps): (&[usize], usize, usize) = if smoke {
        (&[1, 4, 64, 256], 8 << 20, 2)
    } else {
        (&[1, 4, 16, 64, 256, 1024, 10_000], 32 << 20, 3)
    };

    print!(
        "{}",
        heading("Runtime report - fleet scaling, 1 -> 10k links")
    );
    println!("host cores: {cores}\n");
    println!(
        "{:>7} {:>8} {:>7} {:>10} {:>12} {:>10} {:>10}",
        "links", "workers", "ticks", "frames", "agg (Gbps)", "p99 (tk)", "wall (s)"
    );

    let mut gate_failures: Vec<String> = Vec::new();
    let mut rows = String::new();
    let mut single_gbps = 0f64;
    let mut best_at_scale = 0f64;
    for &links in link_counts {
        let m = measure(
            &sweep_config(links, budget, Sharding::WorkStealing, Carrier::Raw),
            reps,
        );
        if links == 1 {
            single_gbps = m.aggregate_gbps;
        }
        if links >= 64 {
            best_at_scale = best_at_scale.max(m.aggregate_gbps);
        }
        let p99 = m.p99_latency_ticks.unwrap_or(0);
        println!(
            "{:>7} {:>8} {:>7} {:>10} {:>12.4} {:>10} {:>10.4}",
            links, m.workers, m.ticks, m.delivered, m.aggregate_gbps, p99, m.wall_s
        );
        if let Some(ceiling) = max_p99 {
            if p99 as f64 > ceiling {
                gate_failures.push(format!(
                    "links={links}: p99 latency {p99} ticks above ceiling {ceiling:.0}"
                ));
            }
        }
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"links\": {links}, \"workers\": {}, \"ticks\": {}, \
             \"delivered_frames\": {}, \"aggregate_gbps\": {:.4}, \
             \"p99_latency_ticks\": {p99}, \"wall_s\": {:.4}}}",
            m.workers, m.ticks, m.delivered, m.aggregate_gbps, m.wall_s
        );
    }
    let uplift = if single_gbps > 0.0 {
        best_at_scale / single_gbps
    } else {
        0.0
    };
    println!(
        "\nscaling: single link {single_gbps:.4} Gbps, best at >=64 links \
         {best_at_scale:.4} Gbps -> uplift {uplift:.2}x"
    );
    if let Some(floor) = min_uplift {
        if cores >= 4 {
            if uplift < floor {
                gate_failures.push(format!(
                    "aggregate uplift {uplift:.2}x below floor {floor:.2}x \
                     ({cores} cores)"
                ));
            }
        } else {
            println!("(uplift gate skipped: only {cores} host cores, need >= 4)");
        }
    }

    // Mode comparison rows at a fixed fleet size: how the cohorts are
    // dealt to workers, and what per-tributary SDH carriage costs.
    let cmp_links = if smoke { 64 } else { 256 };
    let mut modes = String::new();
    for (name, sharding, carrier, links, budget) in [
        (
            "work_stealing",
            Sharding::WorkStealing,
            Carrier::Raw,
            cmp_links,
            budget / 2,
        ),
        (
            "static",
            Sharding::Static,
            Carrier::Raw,
            cmp_links,
            budget / 2,
        ),
        // Channelized realism: 16 links as tributaries of STM-4
        // envelopes, full transmission convergence per envelope — this
        // measures fidelity, not speed.
        (
            "channelized_stm4",
            Sharding::WorkStealing,
            Carrier::Channelized(StmLevel::Stm4),
            16,
            budget / 64,
        ),
    ] {
        let m = measure(&sweep_config(links, budget, sharding, carrier), 2);
        println!(
            "mode {name:<17} links {links:>4}: {:.4} Gbps, p99 {} ticks",
            m.aggregate_gbps,
            m.p99_latency_ticks.unwrap_or(0)
        );
        if !modes.is_empty() {
            modes.push_str(",\n");
        }
        let _ = write!(
            modes,
            "    {{\"mode\": \"{name}\", \"links\": {links}, \
             \"aggregate_gbps\": {:.4}, \"p99_latency_ticks\": {}, \
             \"wall_s\": {:.4}}}",
            m.aggregate_gbps,
            m.p99_latency_ticks.unwrap_or(0),
            m.wall_s
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"runtime\",\n  \"smoke\": {smoke},\n  \
         \"cores\": {cores},\n  \"payload_len\": {PAYLOAD_LEN},\n  \
         \"frames_per_tick\": {FRAMES_PER_TICK},\n  \
         \"single_link_gbps\": {single_gbps:.4},\n  \
         \"best_aggregate_gbps\": {best_at_scale:.4},\n  \
         \"scaling_uplift\": {uplift:.2},\n  \"sweep\": [\n{rows}\n  ],\n  \
         \"modes\": [\n{modes}\n  ]\n}}\n"
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_runtime.json", &json).expect("write results/");
    println!("\nwrote results/BENCH_runtime.json");
    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}
