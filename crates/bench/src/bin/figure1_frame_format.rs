//! Figure 1 — the PPP frame format, rendered from a live encode:
//! every field of a real frame produced by the stack, annotated, plus
//! the on-the-wire image after stuffing (so the flag/escape transparency
//! is visible byte by byte).

use p5_bench::heading;
use p5_core::behavioral::BehavioralTx;
use p5_crc::{fcs32, fcs32_wire_bytes};
use p5_ppp::frame::{FrameCodec, PppFrame};
use p5_ppp::protocol::Protocol;

fn main() {
    print!(
        "{}",
        heading("Figure 1 - the PPP frame format (live encode)")
    );
    let payload = vec![0x31, 0x33, 0x7E, 0x96]; // the paper's example bytes
    let frame = PppFrame::datagram(Protocol::Ipv4, payload.clone());
    let codec = FrameCodec::default();
    let body = codec.encode(&frame);
    let fcs = fcs32(&body);

    println!("field      bytes        value");
    println!("---------  -----------  -----------------------------------");
    println!("flag       7E           frame delimiter");
    println!(
        "address    {:02X}           all-stations (programmable: MAPOS)",
        body[0]
    );
    println!(
        "control    {:02X}           unnumbered information",
        body[1]
    );
    println!(
        "protocol   {:02X} {:02X}        {:?}",
        body[2],
        body[3],
        Protocol::from_number(u16::from_be_bytes([body[2], body[3]]))
    );
    println!("payload    {:02X?}", &body[4..]);
    println!(
        "FCS-32     {:02X?}  (complemented CRC, LSB first)",
        fcs32_wire_bytes(fcs)
    );
    println!("flag       7E           frame delimiter");

    // And the wire image, with stuffing applied.
    let mut tx = BehavioralTx::new(0xFF);
    let mut wire = Vec::new();
    tx.encode_into(Protocol::Ipv4.number(), &payload, &mut wire);
    println!("\non the wire ({} bytes): {:02X?}", wire.len(), wire);
    println!(
        "note the payload flag 7E became 7D 5E — \"0x31, 0x33, 0x7E, 0x96 →\n\
         0x31, 0x33, 0x7D, 0x5E, 0x96\", the paper's worked example."
    );
}
