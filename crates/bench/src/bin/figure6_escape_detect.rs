//! Figure 6 — the Escape Detect data-organisation problem: deleting an
//! escape opens a bubble in the word stream; a byte of the next word
//! must slide back to fill it.
//!
//! 1. the paper's exact illustration as a cycle trace (7D 5E shrinks to
//!    7E, one lane goes empty);
//! 2. a density sweep of the receive side: bubble rate and refill
//!    buffer occupancy vs escape density.

use p5_bench::{heading, payload_with_flag_density};
use p5_core::rx::{EscapeDetect, RxPipeline};
use p5_core::word::Word;
use p5_hdlc::{FcsMode, Framer, FramerConfig};

fn trace() {
    print!(
        "{}",
        heading("Figure 6 - escape deletion trace (32-bit unit)")
    );
    let mut det = EscapeDetect::new(4, EscapeDetect::default_capacity(4));
    // A stuffed stream containing 7D 5E (an escaped flag) mid-word.
    let words = [
        Word::data(&[0x7E, 0x11, 0x7D, 0x5E]), // opening flag + data + escape pair
        Word::data(&[0x22, 0x33, 0x44, 0x7E]), // more data + closing flag
    ];
    println!("cycle | input word          | occupancy | output word (frame bytes)");
    for cycle in 1..=10 {
        let input = words.get(cycle - 1).copied();
        let in_str = input
            .map(|w| format!("{:02X?}", w.lanes()))
            .unwrap_or_else(|| "-".into());
        let out = det.clock(input, true);
        let out_str = out
            .map(|w| format!("{:02X?}{}", w.lanes(), if w.eof { " <eof>" } else { "" }))
            .unwrap_or_else(|| "-".into());
        println!(
            "{cycle:>5} | {in_str:<19} | {occ:>9} | {out_str}",
            occ = det.occupancy()
        );
    }
    println!("(7D 5E collapsed to 7E; the bubble was filled by byte 22 of the next word)");
}

fn sweep() {
    print!(
        "{}",
        heading("Figure 6 sweep - escape density vs bubbles / occupancy")
    );
    println!(
        "{:>8} | {:>11} | {:>11} | {:>13} | {:>9}",
        "density", "bytes/cycle", "bubble rate", "max occupancy", "frames ok"
    );
    for density in [0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0] {
        // Build a wire stream of stuffed frames at this flag density.
        let mut framer = Framer::new(FramerConfig::default());
        let mut wire = Vec::new();
        for i in 0..32 {
            let mut body = vec![0xFF, 0x03, 0x00, 0x21];
            body.extend(payload_with_flag_density(1500, density, 2000 + i));
            framer.encode_into(&body, &mut wire);
        }
        let mut rx = RxPipeline::new(4, 0xFF, FcsMode::Fcs32, 4096);
        let mut cycles = 0u64;
        let mut chunks = wire.chunks(4);
        let mut pending: Option<Word> = None;
        loop {
            cycles += 1;
            if pending.is_none() {
                pending = chunks.next().map(Word::data);
            }
            let feed = if rx.ready() { pending.take() } else { None };
            let done = feed.is_none() && pending.is_none() && chunks.len() == 0;
            rx.clock(feed);
            rx.take_frames();
            if done && rx.idle() {
                break;
            }
        }
        let s = &rx.escape.stats;
        println!(
            "{:>7.0}% | {:>11.2} | {:>10.1}% | {:>13} | {:>9}",
            density * 100.0,
            s.bytes_out as f64 / cycles as f64,
            100.0 * s.bubble_cycles as f64 / cycles as f64,
            s.max_occupancy,
            rx.counters().frames_ok,
        );
    }
    println!(
        "\nshape check: at density 0 the detect unit forwards ~4 bytes/cycle;\n\
         rising density deletes bytes and the bubble rate climbs toward ~50%."
    );
}

fn main() {
    trace();
    sweep();
}
