//! Table 2 — P⁵ 32-bit implementation: synthesis results on the paper's
//! two larger devices, pre- and post-layout.
//!
//! Paper anchors: ≈11× the 8-bit system; ≈25 % of an XC2V1000;
//! 78.125 MHz met on Virtex-II (-6) and missed on Virtex (-4).

use p5_bench::heading;
use p5_fpga::devices;
use p5_rtl::synthesize_system;

fn main() {
    print!("{}", heading("Table 2 - P5 32-bit implementation"));
    for dev in [devices::XCV600_4, devices::XC2V1000_6] {
        let r = synthesize_system(4, &dev);
        print!("{}", r.render());
    }
    // The headline area ratio.
    let w8 = synthesize_system(1, &devices::XCV600_4);
    let w32 = synthesize_system(4, &devices::XCV600_4);
    println!(
        "\n32-bit / 8-bit area ratio: {:.1}x (paper: ~11x, \"not 4 times \
         bigger ... but approximately 11 times bigger\")",
        w32.total_luts_post as f64 / w8.total_luts_post as f64
    );
    println!("paper anchors: ~25% of XC2V1000; line clock met on Virtex-II only");
}
