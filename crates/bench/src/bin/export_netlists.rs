//! Export every P⁵ module as a mapped BLIF netlist (into
//! `target/netlists/`) so the resource numbers can be independently
//! checked in an external open-source flow (ABC / VTR).

use p5_fpga::{map, to_blif, to_verilog, LutNetwork, MapMode};
use p5_rtl::{
    build_crc_unit, build_escape_detect, build_escape_gen, build_oam_regfile, system_modules,
    SorterStyle,
};
use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let dir = Path::new("target/netlists");
    fs::create_dir_all(dir)?;
    let mut modules = Vec::new();
    modules.extend(system_modules(1));
    modules.extend(system_modules(4));
    modules.push(build_escape_gen(4, SorterStyle::OneHot));
    modules.push(build_escape_detect(4, SorterStyle::OneHot));
    modules.push(build_crc_unit(p5_crc::FCS16, 2));
    modules.push(build_oam_regfile());

    let mut seen = std::collections::HashSet::new();
    for n in &modules {
        if !seen.insert(n.name.clone()) {
            continue; // tx/rx share CRC units
        }
        let m = map(n, MapMode::Area);
        let net = LutNetwork::new(n, &m);
        let blif = to_blif(&net);
        let stem = n.name.replace([' ', '-', '(', ')'], "_");
        let fname = format!("{stem}.blif");
        fs::write(dir.join(&fname), &blif)?;
        fs::write(dir.join(format!("{stem}.v")), to_verilog(&net))?;
        println!(
            "{:<38} {:>5} LUTs {:>4} FFs -> target/netlists/{}",
            n.name,
            m.lut_count(),
            m.ff_count,
            fname
        );
    }
    Ok(())
}
