//! §3 latency claim — "the process is divided up into 4 pipelined
//! stages ... The first data transmitted is therefore delayed by 4
//! clock cycles, approximately 50ns.  Subsequent data flow is
//! continuous and efficient."

use p5_bench::heading;
use p5_core::tx::EscapeGen;
use p5_core::word::Word;
use p5_core::DatapathWidth;

fn fill_latency(width: usize) -> u64 {
    let mut esc = EscapeGen::new(width, EscapeGen::default_capacity(width));
    let w = Word::data(&vec![0x42; width]).with_sof();
    for cycle in 1..=32 {
        let input = if cycle == 1 { Some(w) } else { None };
        if esc.clock(input, true, true).is_some() {
            return cycle;
        }
    }
    panic!("no output");
}

fn main() {
    print!("{}", heading("Latency report - escape pipeline fill"));
    for (width, dw) in [(1usize, DatapathWidth::W8), (4, DatapathWidth::W32)] {
        let cycles = fill_latency(width);
        let clock_hz = dw.required_clock_hz() as f64;
        let ns = cycles as f64 * 1e9 / clock_hz;
        println!(
            "{}-bit escape generate: {} cycle fill latency = {:.1} ns at {:.3} MHz",
            width * 8,
            cycles,
            ns,
            clock_hz / 1e6
        );
    }
    println!(
        "\npaper: the 32-bit unit is pipelined over 4 stages; first data \
         delayed 4 clocks (~50 ns at 78.125 MHz); subsequent flow is \
         continuous."
    );
}
