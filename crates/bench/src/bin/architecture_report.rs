//! Figures 2–4 — the P⁵ system architecture, rendered from the actual
//! implementation: the block structure (Figure 2), each direction's
//! three-stage pipeline (Figures 3 and 4), and the synthesized
//! per-module inventory (ports, flip-flops, LUTs) of every block.

use p5_bench::heading;
use p5_fpga::{map, MapMode};
use p5_rtl::{build_oam_regfile, system_modules};

fn main() {
    print!("{}", heading("Figure 2 - P5 system architecture"));
    println!(
        r#"
   Shared Memory                                 Shared Memory
        |                                              ^
        v                                              |
  +-----------------+      +--------------+     +-----------------+
  | PPP TRANSMITTER |<---->| PROTOCOL OAM |<--->|  PPP RECEIVER   |
  |  (Figure 3)     |      |  (uP bus,    |     |   (Figure 4)    |
  |                 |      |  registers,  |     |                 |
  |  Control/Data   |      |  interrupts) |     |  Escape Detect  |
  |      v          |      +--------------+     |       v         |
  |     CRC         |             ^             |      CRC        |
  |      v          |             |             |       v         |
  |  Escape Gen     |         uP (host)         |    Control      |
  +--------+--------+                           +--------^--------+
           v                                             |
          PHY  ------------- SDH/SONET ------------------+
"#
    );

    print!(
        "{}",
        heading("Figures 3 & 4 - per-module inventory (from the netlists)")
    );
    for width in [1usize, 4] {
        println!("\n{}-bit datapath:", width * 8);
        println!(
            "  {:<30} {:>7} {:>6} {:>6} {:>8}",
            "module", "inputs", "FFs", "LUTs", "gates"
        );
        for n in system_modules(width) {
            let inputs: usize = n.inputs.iter().map(|b| b.sigs.len()).sum();
            let m = map(&n, MapMode::Area);
            println!(
                "  {:<30} {:>7} {:>6} {:>6} {:>8}",
                n.name,
                inputs,
                n.ff_count(),
                m.lut_count(),
                n.gate_count()
            );
        }
    }
    let oam = build_oam_regfile();
    let m = map(&oam, MapMode::Area);
    println!(
        "\n  {:<30} {:>7} {:>6} {:>6} {:>8}   (reported separately: the paper's tables are datapath-only)",
        oam.name,
        oam.inputs.iter().map(|b| b.sigs.len()).sum::<usize>(),
        oam.ff_count(),
        m.lut_count(),
        oam.gate_count()
    );
}
