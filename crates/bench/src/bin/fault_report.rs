//! Chaos report — the p5-fault model exercised end to end, with the
//! recovery invariants the paper's error-handling design promises held
//! as hard gates:
//!
//! 1. **Injection scenarios** — seeded fault plans (uniform BER sweep,
//!    Gilbert–Elliott bursts, byte slips/duplications, truncations,
//!    aborts and fabricated flags, stall storms) each driven over an
//!    STM-4 link built by [`LinkBuilder`].  Gates: nothing corrupt is
//!    ever delivered, and every datagram is either delivered intact or
//!    shows up in an OAM error counter (one-sided accounting: corrupted
//!    idle fill can add spurious runts, and a corrupted flag can merge
//!    two frames into one error).
//! 2. **Re-delineation latency** — seeded mid-stream corruptions of a
//!    framed wire image; the byte distance from the hit to the next
//!    good frame is histogrammed and gated against
//!    `DeframerConfig::resync_bound_bytes`.
//! 3. **Renegotiation under outage** — LCP/IPCP sessions over a duplex
//!    link; a total transfer-loss outage degrades the measured delivery
//!    ratio until the link-quality policy trips, the driver bounces the
//!    link (`Session::renegotiate`), and the session must re-open
//!    within the RFC 1661 restart budget.
//!
//! Writes `results/BENCH_fault.json`.  `--smoke` shrinks the traffic
//! for CI; every gate still runs.

use p5_bench::{heading, imix_sizes, ip_like_datagram};
use p5_core::DatapathWidth;
use p5_fault::FaultSpec;
use p5_hdlc::{DeframeEvent, Deframer, DeframerConfig, Framer, FramerConfig};
use p5_link::{LinkBuilder, LinkEnd};
use p5_ppp::lqr::{QualityDelta, QualityPolicy, QualityTracker};
use p5_ppp::session::{Session, SessionEvent};
use p5_ppp::NegotiationProfile;
use p5_sonet::StmLevel;
use p5_trace::Histogram;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One link scenario's outcome.
struct ScenarioOut {
    name: &'static str,
    seed: u64,
    sent: usize,
    delivered: usize,
    errors: u64,
    corrupt: usize,
    stalled: bool,
    injected: Vec<(String, u64)>,
}

impl ScenarioOut {
    fn accounted(&self) -> bool {
        self.delivered as u64 + self.errors >= self.sent as u64 - 4
    }

    fn json(&self) -> String {
        let injected = self
            .injected
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "    {{\"scenario\": \"{}\", \"seed\": {}, \"sent\": {}, \
             \"delivered\": {}, \"counted_drops\": {}, \
             \"corrupt_deliveries\": {}, \"accounted\": {}, \
             \"injected\": {{{injected}}}}}",
            self.name,
            self.seed,
            self.sent,
            self.delivered,
            self.errors,
            self.corrupt,
            self.accounted(),
        )
    }
}

/// Drive `n` IMIX datagrams through an STM-4 link impaired by `spec`.
fn link_scenario(name: &'static str, spec: FaultSpec, seed: u64, n: usize) -> ScenarioOut {
    let plan = spec.compile(seed).expect("scenario specs are valid");
    let mut link = LinkBuilder::new()
        .width(DatapathWidth::W32)
        .sonet(StmLevel::Stm4)
        .fault(plan)
        .build()
        .expect("scenario link assembles");
    let mut sent = Vec::new();
    for (i, len) in imix_sizes(n, seed).iter().enumerate() {
        let d = ip_like_datagram(*len, i as u64);
        link.send(0x0021, &d);
        sent.push(d);
    }
    // Stall storms are bounded, so a generous budget always drains.
    let stalled = link.run(500_000).is_err();
    let delivered = link.deliveries();
    // The link is in-order: every delivery must match the next unmatched
    // sent datagram, or it is a corrupt delivery (the FCS missed it).
    let mut corrupt = 0usize;
    let mut si = sent.iter();
    for (_, p) in &delivered {
        if !si.any(|d| d == p) {
            corrupt += 1;
        }
    }
    // Injected-fault counters, as the observability layer exports them.
    let mut injected = Vec::new();
    for snap in link.snapshots() {
        if snap.scope == "fault" {
            for key in [
                "fault_bit_error",
                "fault_burst",
                "fault_slip",
                "fault_duplicate",
                "fault_truncate",
                "fault_abort",
                "fault_spurious_flag",
                "fault_stall",
            ] {
                if let Some(v) = snap.get(key) {
                    if v > 0 {
                        injected.push((key.to_string(), v));
                    }
                }
            }
        }
        if snap.scope == "oc-path" {
            for key in ["bits_flipped", "bursts_injected"] {
                if let Some(v) = snap.get(key) {
                    if v > 0 {
                        injected.push((key.to_string(), v));
                    }
                }
            }
        }
    }
    ScenarioOut {
        name,
        seed,
        sent: sent.len(),
        delivered: delivered.len(),
        errors: link.rx_errors(),
        corrupt,
        stalled,
        injected,
    }
}

/// Corrupt one byte mid-stream in a framed wire image and measure the
/// byte distance until the deframer delivers the next good frame.
fn resync_trial(rng: &mut StdRng, cfg: DeframerConfig) -> Option<u64> {
    let mut framer = Framer::new(FramerConfig::default());
    let mut wire = Vec::new();
    let n_frames = rng.gen_range(4..10);
    for i in 0..n_frames {
        let len = rng.gen_range(40..400);
        wire.extend_from_slice(&framer.encode(&ip_like_datagram(len, i as u64)));
    }
    // Hit somewhere in the first half so good frames follow the damage.
    let hit = rng.gen_range(0..wire.len() / 2);
    wire[hit] ^= 1u8 << rng.gen_range(0..8);
    let mut deframer = Deframer::new(cfg);
    for (i, &b) in wire.iter().enumerate() {
        if let Some(DeframeEvent::Frame(_)) = deframer.push_byte(b) {
            if i > hit {
                return Some((i - hit) as u64);
            }
        }
    }
    // The flip landed somewhere harmless enough that no frame completed
    // after it (e.g. inside the final partial image) — no measurement.
    None
}

/// Drive one session pump tick; counts delivered datagrams into `got`.
fn pump(sess: &mut Session, end: &mut LinkEnd, now: u64, got: &mut u32) {
    sess.tick(now);
    for (proto, info) in sess.poll_output() {
        end.submit(proto, info).unwrap();
    }
    end.run(512);
    for frame in end.take_received() {
        sess.receive(frame.protocol, &frame.payload);
    }
    for ev in sess.poll_events() {
        if matches!(ev, SessionEvent::Datagram(_)) {
            *got += 1;
        }
    }
}

/// One outage-then-renegotiate trial: returns (ticks from trip to
/// re-open, budget) or None if the session never re-opened.
fn renegotiate_trial(seed: u64) -> (Option<u64>, u64) {
    // Restart period must exceed the link round trip (same rule as the
    // lcp_negotiation example).
    let mut a = Session::with_profile(
        &NegotiationProfile::new()
            .magic(0x1111_0000 | seed as u32)
            .ip([10, 0, 0, 1])
            .restart_period(10),
    );
    let mut b = Session::with_profile(
        &NegotiationProfile::new()
            .magic(0x2222_0000 | seed as u32)
            .ip([10, 0, 0, 2])
            .restart_period(10),
    );
    let mut link = LinkBuilder::new().build_duplex().expect("clean duplex");
    a.start();
    b.start();
    let mut now = 0u64;
    let mut sink = 0u32;
    while !(a.is_network_up() && b.is_network_up()) {
        pump(&mut a, &mut link.a, now, &mut sink);
        pump(&mut b, &mut link.b, now, &mut sink);
        link.exchange();
        now += 1;
        if now > 500 {
            return (None, 0);
        }
    }

    // Total outage: every wire transfer is lost.  The LQR-style quality
    // policy watches the measured delivery ratio per interval.
    let outage = FaultSpec::clean()
        .transfer_loss(1.0)
        .compile(seed)
        .expect("valid outage spec");
    link.set_fault(&outage);
    let policy = QualityPolicy::default();
    let mut tracker = QualityTracker::new(policy);
    loop {
        let mut received = 0u32;
        for _ in 0..5 {
            a.send_datagram(vec![0x45; 40]);
            let mut unused = 0u32;
            pump(&mut a, &mut link.a, now, &mut unused);
            pump(&mut b, &mut link.b, now, &mut received);
            link.exchange();
            now += 1;
        }
        if tracker.observe(QualityDelta { sent: 5, received }) {
            break;
        }
        if now > 2_000 {
            return (None, 0);
        }
    }

    // The policy tripped: the driver bounces the link; the outage ends.
    link.clear_fault();
    a.renegotiate();
    // LCP then IPCP each get one restart budget.
    let budget = 2 * a.lcp.config().restart_budget_ticks();
    let start = now;
    while !(a.is_network_up() && b.is_network_up()) {
        pump(&mut a, &mut link.a, now, &mut sink);
        pump(&mut b, &mut link.b, now, &mut sink);
        link.exchange();
        now += 1;
        if now - start > budget {
            return (None, budget);
        }
    }
    (Some(now - start), budget)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let (n, resync_trials, reneg_trials) = if smoke { (80, 60, 3) } else { (240, 300, 8) };

    print!(
        "{}",
        heading("Fault report - injection scenarios, resync latency, renegotiation")
    );

    let mut gate_failures: Vec<String> = Vec::new();

    // 1. Injection scenarios over the STM-4 link.
    let scenarios = [
        ("clean", FaultSpec::clean(), 100),
        ("ber_1e-6", FaultSpec::clean().ber(1e-6), 101),
        ("ber_1e-5", FaultSpec::clean().ber(1e-5), 102),
        ("ber_1e-4", FaultSpec::clean().ber(1e-4), 103),
        (
            "burst",
            FaultSpec::clean().burst(2e-5, 1.0 / 16.0, 0.5),
            104,
        ),
        (
            "slip_dup",
            FaultSpec::clean().slip(1e-3).duplicate(5e-4),
            105,
        ),
        (
            "structural",
            FaultSpec::clean()
                .truncate(5e-4, 16)
                .abort(5e-4)
                .spurious_flag(5e-4),
            106,
        ),
        ("storm", FaultSpec::clean().ber(1e-5).stall(0.02, 32), 107),
    ];
    let mut scenario_rows = String::new();
    for (name, spec, seed) in scenarios {
        let out = link_scenario(name, spec, seed, n);
        println!(
            "{:>10}: sent={} delivered={} counted-drops={} corrupt={} injected={:?}",
            out.name, out.sent, out.delivered, out.errors, out.corrupt, out.injected
        );
        if out.corrupt > 0 {
            gate_failures.push(format!(
                "{name}: {} corrupt deliveries slipped past the FCS",
                out.corrupt
            ));
        }
        if !out.accounted() {
            gate_failures.push(format!(
                "{name}: accounting hole - {} delivered + {} errors < {} sent - 4",
                out.delivered, out.errors, out.sent
            ));
        }
        if out.stalled {
            gate_failures.push(format!("{name}: link wedged (storms must be bounded)"));
        }
        match name {
            "clean" if out.delivered != out.sent || out.errors != 0 => {
                gate_failures.push(format!(
                    "clean: {} of {} delivered with {} errors",
                    out.delivered, out.sent, out.errors
                ));
            }
            "storm"
                if !out
                    .injected
                    .iter()
                    .any(|(k, v)| k == "fault_stall" && *v > 0) =>
            {
                gate_failures.push("storm: no stall storms were injected".into());
            }
            // 1e-6 over a smoke run legitimately rounds to zero flips;
            // the hotter scenarios must show injection activity.
            "ber_1e-5" | "ber_1e-4" | "burst" | "slip_dup" | "structural"
                if out.injected.is_empty() =>
            {
                gate_failures.push(format!("{name}: no faults were injected"));
            }
            _ => {}
        }
        if !scenario_rows.is_empty() {
            scenario_rows.push_str(",\n");
        }
        scenario_rows.push_str(&out.json());
    }

    // 2. Re-delineation latency vs the documented bound.
    let cfg = DeframerConfig::default();
    let bound = cfg.resync_bound_bytes() as u64;
    let mut hist = Histogram::new();
    let mut max_dist = 0u64;
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..resync_trials {
        if let Some(d) = resync_trial(&mut rng, cfg) {
            hist.observe(d);
            max_dist = max_dist.max(d);
        }
    }
    println!(
        "\nresync: {} corruptions measured, mean {:.0} bytes, max {} (bound {})",
        hist.count(),
        hist.mean(),
        max_dist,
        bound
    );
    for line in hist.render().lines() {
        println!("  {line}");
    }
    if hist.is_empty() {
        gate_failures.push("resync: no corruption produced a measurement".into());
    }
    if max_dist > bound {
        gate_failures.push(format!(
            "resync: {max_dist} bytes to re-delineate exceeds the bound {bound}"
        ));
    }

    // 3. Outage → policy trip → renegotiation within the restart budget.
    let mut reneg_hist = Histogram::new();
    let mut reneg_budget = 0u64;
    let mut reneg_max = 0u64;
    for t in 0..reneg_trials {
        let (ticks, budget) = renegotiate_trial(200 + t as u64);
        reneg_budget = reneg_budget.max(budget);
        match ticks {
            Some(ticks) => {
                reneg_hist.observe(ticks);
                reneg_max = reneg_max.max(ticks);
            }
            None => gate_failures.push(format!(
                "renegotiate[{t}]: session failed to re-open within {budget} ticks"
            )),
        }
    }
    println!(
        "\nrenegotiate: {} outages recovered, mean {:.0} ticks, max {} (budget {})",
        reneg_hist.count(),
        reneg_hist.mean(),
        reneg_max,
        reneg_budget
    );

    let json = format!(
        "{{\n  \"bench\": \"fault\",\n  \"smoke\": {smoke},\n  \
         \"imix_datagrams\": {n},\n  \
         \"scenarios\": [\n{scenario_rows}\n  ],\n  \
         \"resync\": {{\"trials\": {}, \"measured\": {}, \
         \"mean_bytes\": {:.1}, \"max_bytes\": {max_dist}, \
         \"bound_bytes\": {bound}}},\n  \
         \"renegotiate\": {{\"trials\": {reneg_trials}, \"recovered\": {}, \
         \"mean_ticks\": {:.1}, \"max_ticks\": {reneg_max}, \
         \"budget_ticks\": {reneg_budget}}}\n}}\n",
        resync_trials,
        hist.count(),
        hist.mean(),
        reneg_hist.count(),
        reneg_hist.mean(),
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_fault.json", &json).expect("write results/");
    println!("\nwrote results/BENCH_fault.json");

    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}
