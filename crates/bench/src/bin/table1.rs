//! Table 1 — P⁵ 8-bit implementation: synthesis results on the paper's
//! two small devices, pre- and post-layout.
//!
//! Paper anchors: ≈184 LUTs (12 % of an XCV50) / ≈84 FFs; the 8-bit
//! system meets 78.125 MHz comfortably on Virtex-II.

use p5_bench::heading;
use p5_fpga::devices;
use p5_rtl::synthesize_system;

fn main() {
    print!("{}", heading("Table 1 - P5 8-bit implementation"));
    for dev in [devices::XCV50_4, devices::XC2V40_6] {
        let r = synthesize_system(1, &dev);
        print!("{}", r.render());
    }
    println!(
        "\npaper anchors: ~184 LUTs (12% of XCV50-4), ~84 FFs; \
         78.125 MHz required for 625 Mbps"
    );
}
