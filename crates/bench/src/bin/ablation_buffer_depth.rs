//! Ablation (DESIGN.md §6.1) — how low can the "extremely low
//! resynchronisation buffer" go?
//!
//! Sweeps the Escape Generate staging capacity against worst-case
//! all-flag payloads and reports stall behaviour; the backpressure gate
//! guarantees no overflow at any legal capacity, so the question is
//! throughput cost, not correctness.

use p5_bench::{heading, payload_with_flag_density};
use p5_core::tx::{EscapeGen, TxDescriptor};
use p5_core::word::Word;
use p5_hdlc::FcsMode;

/// Run a payload through a TxPipeline whose escape unit has the given
/// buffer capacity; returns (cycles, wire_bytes, stall%, max occupancy).
fn run(capacity: usize, payload: &[u8]) -> (u64, u64, f64, usize) {
    let mut tx = p5_core::tx::TxPipeline::new(4, 0xFF, FcsMode::Fcs32);
    tx.escape = EscapeGen::new(4, capacity);
    tx.submit(TxDescriptor {
        protocol: 0x0021,
        payload: payload.to_vec(),
    })
    .unwrap();
    let mut cycles = 0u64;
    let mut bytes = 0u64;
    while !tx.idle() {
        cycles += 1;
        if let Some(w) = tx.clock(true) {
            bytes += w.len as u64;
        }
        assert!(cycles < 10_000_000, "runaway");
    }
    (
        cycles,
        bytes,
        100.0 * tx.escape.stats.stall_rate(),
        tx.escape.stats.max_occupancy,
    )
}

fn main() {
    print!(
        "{}",
        heading("Ablation - resynchronisation buffer depth (32-bit escape generate)")
    );
    // The provable minimum: worst-case expansion (2w) + opening flag +
    // up to w-1 residue bytes parked mid-frame = 3w+1.  (Capacities
    // below this deadlock: the residue keeps `free` under the
    // worst-case bound forever.)
    let min_cap = 3 * 4 + 1;
    println!("worst case: 1500-byte all-flag payload (2x expansion)");
    println!(
        "{:>9} | {:>7} | {:>10} | {:>10} | {:>13}",
        "capacity", "cycles", "bytes/cyc", "stall rate", "max occupancy"
    );
    let worst = payload_with_flag_density(1500, 1.0, 7);
    for capacity in [min_cap, 16, 24, 32, 64] {
        let (cycles, bytes, stall, occ) = run(capacity, &worst);
        println!(
            "{:>9} | {:>7} | {:>10.2} | {:>9.1}% | {:>13}",
            capacity,
            cycles,
            bytes as f64 / cycles as f64,
            stall,
            occ
        );
    }
    println!("\ntypical case: 1500-byte payload at 5% flag density");
    let typical = payload_with_flag_density(1500, 0.05, 8);
    println!(
        "{:>9} | {:>7} | {:>10} | {:>10} | {:>13}",
        "capacity", "cycles", "bytes/cyc", "stall rate", "max occupancy"
    );
    for capacity in [min_cap, 16, 24, 32, 64] {
        let (cycles, bytes, stall, occ) = run(capacity, &typical);
        println!(
            "{:>9} | {:>7} | {:>10.2} | {:>9.1}% | {:>13}",
            capacity,
            cycles,
            bytes as f64 / cycles as f64,
            stall,
            occ
        );
    }
    println!(
        "\nfinding: the minimum legal buffer ({min_cap} bytes) already \
         sustains full throughput;\nthe cost of worst-case traffic is \
         inherent 2x expansion (stalls), not buffer size —\nwhich is why \
         the paper can keep the resynchronisation buffer 'extremely low'."
    );
    // Silence unused-import warning for Word if optimisations change.
    let _ = Word::default();
}
