//! Figure 5 — the Escape Generate data-organisation problem.
//!
//! Two parts:
//! 1. the paper's exact illustration: a flag character in a 32-bit word
//!    expands 4 bytes into 5, shown as a cycle-by-cycle trace of the
//!    escape unit;
//! 2. a flag-density sweep quantifying the consequence: output
//!    expansion, resynchronisation-buffer occupancy, and the
//!    backpressure (input stall) rate, up to the worst case where every
//!    byte is a flag and throughput halves.

use p5_bench::{heading, payload_with_flag_density};
use p5_core::tx::{EscapeGen, TxDescriptor, TxPipeline};
use p5_core::word::Word;
use p5_hdlc::FcsMode;

fn trace() {
    print!(
        "{}",
        heading("Figure 5 - escape expansion trace (32-bit unit)")
    );
    let mut esc = EscapeGen::new(4, EscapeGen::default_capacity(4));
    // The paper's example: 7E 12 xx xx — the flag expands to 7D 5E.
    let words = [
        Word::data(&[0x7E, 0x12, 0x34, 0x56]).with_sof(),
        Word::data(&[0x78, 0x9A, 0xBC, 0xDE]).with_eof(),
    ];
    println!("cycle | input word          | occupancy | output word");
    for cycle in 1..=10 {
        let input = words.get(cycle - 1).copied();
        let in_str = input
            .map(|w| format!("{:02X?}", w.lanes()))
            .unwrap_or_else(|| "-".into());
        let out = esc.clock(input, true, true);
        let out_str = out
            .map(|w| format!("{:02X?}", w.lanes()))
            .unwrap_or_else(|| "-".into());
        println!(
            "{cycle:>5} | {in_str:<19} | {occ:>9} | {out_str}",
            occ = esc.occupancy()
        );
    }
    println!("(flag 7E became 7D 5E; the extra byte spills into the next wire word)");
}

fn sweep() {
    print!(
        "{}",
        heading("Figure 5 sweep - flag density vs expansion / stalls / occupancy")
    );
    println!(
        "{:>8} | {:>11} | {:>10} | {:>10} | {:>12} | {:>12}",
        "density", "bytes/cycle", "expansion", "stall rate", "max occupancy", "backpressure"
    );
    for density in [0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0] {
        let mut tx = TxPipeline::new(4, 0xFF, FcsMode::Fcs32);
        let payload_len = 1500usize;
        let mut body_bytes = 0u64;
        for i in 0..32 {
            let p = payload_with_flag_density(payload_len, density, 1000 + i);
            body_bytes += (p.len() + 4) as u64; // + header
            tx.submit(TxDescriptor {
                protocol: 0x0021,
                payload: p,
            })
            .unwrap();
        }
        let mut wire_bytes = 0u64;
        let mut cycles = 0u64;
        while !tx.idle() {
            cycles += 1;
            if let Some(w) = tx.clock(true) {
                wire_bytes += w.len as u64;
            }
        }
        let s = &tx.escape.stats;
        println!(
            "{:>7.0}% | {:>11.2} | {:>9.2}x | {:>9.1}% | {:>13} | {:>11.1}%",
            density * 100.0,
            wire_bytes as f64 / cycles as f64,
            wire_bytes as f64 / (body_bytes + 32 * 4 + 1) as f64,
            100.0 * s.stall_rate(),
            s.max_occupancy,
            100.0 * tx.escape.backpressure_cycles as f64 / cycles as f64,
        );
    }
    println!(
        "\nshape check: at density 0 the unit sustains ~4 bytes/cycle (32 bits per clock);\n\
         at density 1 expansion -> 2x and backpressure halves the input rate."
    );
}

fn main() {
    trace();
    sweep();
}
