//! Table 3 — Escape Generator module alone, 32-bit vs 8-bit, on the
//! XC2V40 (the paper's dedicated experiment isolating the byte sorter).
//!
//! Paper anchors: 32-bit = 492 LUTs (96 %) / 168 FFs (32 %);
//! 8-bit = 22 LUTs (4 %) / 6 FFs (~1 %) — 25× LUTs, 28× FFs.

use p5_bench::heading;
use p5_fpga::{devices, synthesize};
use p5_rtl::{build_escape_gen, SorterStyle};

fn main() {
    print!(
        "{}",
        heading("Table 3 - Escape Generator implementation (XC2V40-6)")
    );
    let dev = devices::XC2V40_6;
    let w32 = synthesize(&build_escape_gen(4, SorterStyle::Barrel), &dev);
    let w8 = synthesize(&build_escape_gen(1, SorterStyle::Barrel), &dev);
    println!("  {}", w32.table_row());
    println!("  {}", w8.table_row());
    println!(
        "\nratios (post-layout): {:.0}x LUTs, {:.0}x FFs   (paper: 25x LUTs, 28x FFs)",
        w32.luts_post as f64 / w8.luts_post as f64,
        w32.ffs as f64 / w8.ffs as f64,
    );
    println!("paper anchors: 32-bit 492 LUT (96%) / 168 FF (32%); 8-bit 22 LUT (4%) / 6 FF (~1%)");
}
