//! Observability report — the p5-trace layer exercised end to end.
//!
//! Three experiments per datapath width (8-bit and 32-bit):
//!
//! 1. **Duplex lifecycle trace** — two devices clocked in lockstep,
//!    wire bytes shuttled both ways each cycle, a [`SharedRecorder`]
//!    on each.  Every frame's submit → framed → stuffed → wire →
//!    delineated → CRC verdict → delivered chain is matched up by
//!    frame id and the cycle-exact latency histogrammed.
//! 2. **Stall attribution** — a `TxStage → throttled link → RxStage`
//!    stack over the same traffic; the per-boundary
//!    offered/accepted/rejected/blocked table names the bottleneck.
//! 3. **Overhead gate** — the instrumented-but-disabled device re-runs
//!    the throughput workload; its deterministic bytes/cycle must stay
//!    within `--max-overhead-pct` (default 3%) of the baseline recorded
//!    in `results/BENCH_throughput.json`, or the run exits 1.
//! 4. **Fleet-path overhead gate** — a 256-link fleet runs plain
//!    (`Fleet::run_ticks`) and again through the observability sampling
//!    path (`Fleet::run_sampled`) with *no collector attached*; the
//!    sampling plumbing must cost at most `--max-fleet-overhead-pct`
//!    (default 3%) wall time when nothing is sampling.
//!
//! Writes `results/BENCH_trace.json`.  `--smoke` shrinks the duplex
//! traffic for CI; the overhead gate replays whatever frame count the
//! baseline file records, so the comparison is exact either way.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

use p5_bench::{heading, imix_sizes, ip_like_datagram};
use p5_core::{encap_tagged, DatapathWidth, RxStage, TxStage, P5};
use p5_link::LinkBuilder;
use p5_runtime::{Fleet, FleetConfig, TrafficSpec};
use p5_stream::{stack, Pipe, SharedRecorder, Throttle};
use p5_trace::{EventKind, Histogram};

/// One direction's latency summary from matched Submit/Delivered events.
struct Latency {
    hist: Histogram,
    min: u64,
    max: u64,
}

impl Latency {
    fn observe_all(submits: &HashMap<u32, u64>, delivers: &[(u32, u64)]) -> Self {
        let mut l = Latency {
            hist: Histogram::new(),
            min: u64::MAX,
            max: 0,
        };
        for (id, cycle) in delivers {
            let Some(&sub) = submits.get(id) else {
                continue;
            };
            let d = cycle - sub;
            l.hist.observe(d);
            l.min = l.min.min(d);
            l.max = l.max.max(d);
        }
        l
    }

    fn json(&self) -> String {
        format!(
            "{{\"frames\": {}, \"mean_cycles\": {:.1}, \
             \"min_cycles\": {}, \"max_cycles\": {}}}",
            self.hist.count(),
            self.hist.mean(),
            if self.hist.is_empty() { 0 } else { self.min },
            self.max
        )
    }
}

struct DuplexOut {
    events_a: usize,
    events_b: usize,
    census_a: String,
    census_b: String,
    a2b: Latency,
    b2a: Latency,
}

/// Clock two traced devices in lockstep, shuttling the wire both ways
/// every cycle, until `frames` frames have been delivered in each
/// direction.  The devices and the wire come from
/// [`LinkBuilder::build_duplex`]; the lockstep clocking (one cycle per
/// exchange, for cycle-exact latency) is driven here.
fn duplex_run(width: DatapathWidth, frames: usize) -> DuplexOut {
    let rec_a = SharedRecorder::with_capacity(1 << 15);
    let rec_b = SharedRecorder::with_capacity(1 << 15);
    let mut link = LinkBuilder::new()
        .width(width)
        .build_duplex()
        .expect("clean duplex link builds");
    // Latency is matched per direction, so each device gets its own
    // recorder (the builder's `.trace` installs one shared recorder).
    link.a.p5.set_trace(Box::new(rec_a.clone()));
    link.b.p5.set_trace(Box::new(rec_b.clone()));
    let (a, b) = (&mut link.a.p5, &mut link.b.p5);

    let sizes_a = imix_sizes(frames, 11);
    let sizes_b = imix_sizes(frames, 23);
    let (mut next_a, mut next_b) = (0usize, 0usize);
    let (mut got_a, mut got_b) = (0usize, 0usize);
    let mut guard = 0u64;
    while got_a < frames || got_b < frames {
        // Streaming load: each side submits its next datagram as soon
        // as the transmit queue has room.
        if next_a < frames && a.tx.control.queue_free() > 0 {
            a.submit(0x0021, ip_like_datagram(sizes_a[next_a], next_a as u64))
                .expect("queue_free checked");
            next_a += 1;
        }
        if next_b < frames && b.tx.control.queue_free() > 0 {
            b.submit(0x0021, ip_like_datagram(sizes_b[next_b], next_b as u64))
                .expect("queue_free checked");
            next_b += 1;
        }
        a.clock();
        b.clock();
        // One cycle per exchange: the clean ferry is a zero-latency wire,
        // so the matched submit→deliver latencies stay cycle-exact.
        let wa = a.take_wire_out();
        if !wa.is_empty() {
            b.put_wire_in(&wa);
        }
        let wb = b.take_wire_out();
        if !wb.is_empty() {
            a.put_wire_in(&wb);
        }
        got_b += a.take_received().len();
        got_a += b.take_received().len();
        guard += 1;
        assert!(guard < 50_000_000, "duplex run failed to drain");
    }

    // Match Submit (sender clock) to Delivered (receiver clock): the
    // clocks are lockstep and the link is in-order and lossless, so the
    // receiver's k-th frame id equals the sender's k-th.
    let index = |rec: &SharedRecorder| {
        let mut submits = HashMap::new();
        let mut delivers = Vec::new();
        for e in rec.events() {
            match e.kind {
                EventKind::Submit { id, .. } => {
                    submits.insert(id, e.cycle);
                }
                EventKind::Delivered { id, .. } => delivers.push((id, e.cycle)),
                _ => {}
            }
        }
        (submits, delivers)
    };
    let (sub_a, del_a) = index(&rec_a);
    let (sub_b, del_b) = index(&rec_b);
    DuplexOut {
        events_a: rec_a.len(),
        events_b: rec_b.len(),
        census_a: event_census(&rec_a),
        census_b: event_census(&rec_b),
        a2b: Latency::observe_all(&sub_a, &del_b),
        b2a: Latency::observe_all(&sub_b, &del_a),
    }
}

/// Event-kind census of one recorder, rendered as `kind:count` pairs.
fn event_census(rec: &SharedRecorder) -> String {
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for e in rec.events() {
        let name = e.kind.name();
        match counts.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += 1,
            None => counts.push((name, 1)),
        }
    }
    counts
        .iter()
        .map(|(n, c)| format!("{n}:{c}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Drive a tx → throttled-link → rx stack and return the rendered stall
/// table plus the boundary counters for the JSON report.  The throttled
/// middle stage is a custom topology `LinkBuilder` does not model, so
/// this uses the raw `stack!` escape hatch by design.
fn stall_run(width: DatapathWidth, frames: usize) -> (String, String, usize) {
    let mut s = stack![
        TxStage::new(P5::new(width)),
        // A link that refuses two sweeps in three (odd pattern length so
        // the two gate draws per sweep walk the whole pattern).
        Throttle::new(Pipe::new(), vec![true, false, false]),
        RxStage::new(P5::new(width)),
    ];
    let rec = SharedRecorder::with_capacity(1 << 14);
    s.set_sink(Box::new(rec.clone()));
    for (i, len) in imix_sizes(frames, 31).iter().enumerate() {
        encap_tagged(
            0x0021,
            &ip_like_datagram(*len, i as u64),
            i as u32 + 1,
            s.input(),
        );
    }
    assert!(s.run_until_idle(400_000), "stall stack failed to drain");
    let mut json = String::new();
    for (i, snap) in s.boundary_snapshots().iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(
            json,
            "{{\"boundary\": \"{}\", \"offered\": {}, \"accepted\": {}, \
             \"rejected\": {}, \"blocked\": {}}}",
            snap.scope,
            snap.get("offered").unwrap_or(0),
            snap.get("accepted").unwrap_or(0),
            snap.get("rejected").unwrap_or(0),
            snap.get("blocked").unwrap_or(0),
        );
    }
    (s.stall_table(), json, rec.len())
}

/// Deterministic bytes/cycle of the throughput workload, with tracing
/// either left disabled (the overhead-gate configuration) or attached.
fn measure_bpc(width: DatapathWidth, datagrams: usize, traced: bool) -> (f64, f64) {
    let mut p5 = P5::new(width);
    let rec = SharedRecorder::with_capacity(1 << 15);
    if traced {
        p5.set_trace(Box::new(rec.clone()));
    }
    for (i, len) in imix_sizes(datagrams, 42).iter().enumerate() {
        p5.submit(0x0021, ip_like_datagram(*len, i as u64)).unwrap();
    }
    let started = Instant::now();
    let cycles = p5.run_until_idle(100_000_000);
    let wall = started.elapsed().as_secs_f64();
    let wire = p5.take_wire_out();
    (
        wire.len() as f64 / cycles as f64,
        wire.len() as f64 * 8.0 / wall / 1e9,
    )
}

/// Wall time (seconds) of one fleet run, best of `reps` (the minimum is
/// the least-noise estimator for a deterministic workload).
fn fleet_wall(links: usize, ticks: u64, sampled: bool, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut fleet = Fleet::new(FleetConfig {
            links,
            traffic: Some(TrafficSpec {
                frames_per_tick: 1,
                ticks,
                ..TrafficSpec::default()
            }),
            ..FleetConfig::default()
        })
        .expect("fleet builds");
        let started = Instant::now();
        if sampled {
            // The observability drive path at the collector's default
            // cadence, with NOTHING attached: this is what every fleet
            // pays just for being scrape-ready.
            fleet.run_sampled(ticks * 4, 64, |_| {});
        } else {
            // The established drive loop (same 64-tick batching), so
            // the comparison isolates the sampling hook itself.
            fleet.run_until_drained(ticks * 4);
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

/// Pull one numeric field out of the baseline JSON by string scan (the
/// harness ships no JSON parser), searching forward from `anchor`.
fn scan_number(json: &str, anchor: &str, field: &str) -> Option<f64> {
    let start = json.find(anchor)?;
    let rest = &json[start..];
    let key = format!("\"{field}\": ");
    let at = rest.find(&key)? + key.len();
    let tail = &rest[at..];
    let end = tail
        .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-')
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn arg_value(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let max_overhead_pct = arg_value(&args, "--max-overhead-pct").unwrap_or(3.0);
    let max_fleet_overhead_pct = arg_value(&args, "--max-fleet-overhead-pct").unwrap_or(3.0);
    let frames = if smoke { 24 } else { 120 };

    print!(
        "{}",
        heading("Trace report - duplex lifecycle, stall attribution, overhead")
    );

    let baseline = std::fs::read_to_string("results/BENCH_throughput.json").ok();
    let mut gate_failures: Vec<String> = Vec::new();
    let (mut duplex_rows, mut stall_rows, mut overhead_rows) =
        (String::new(), String::new(), String::new());

    for (width, bits) in [(DatapathWidth::W8, 8u32), (DatapathWidth::W32, 32u32)] {
        println!("\n--- {bits}-bit datapath ---");

        // 1. Duplex lifecycle trace + latency histograms.
        let d = duplex_run(width, frames);
        println!(
            "duplex: {} frames/direction, {} + {} events recorded",
            frames, d.events_a, d.events_b
        );
        println!("  station A events: {}", d.census_a);
        println!("  station B events: {}", d.census_b);
        for (dir, l) in [("A->B", &d.a2b), ("B->A", &d.b2a)] {
            println!(
                "latency {dir}: {} frames, mean {:.1} cycles, min {}, max {}",
                l.hist.count(),
                l.hist.mean(),
                l.min,
                l.max
            );
            for line in l.hist.render().lines() {
                println!("  {line}");
            }
        }
        if d.a2b.hist.count() as usize != frames || d.b2a.hist.count() as usize != frames {
            gate_failures.push(format!(
                "{bits}-bit duplex: matched {}/{} A->B and {}/{} B->A lifecycles",
                d.a2b.hist.count(),
                frames,
                d.b2a.hist.count(),
                frames
            ));
        }
        if !duplex_rows.is_empty() {
            duplex_rows.push_str(",\n");
        }
        let _ = write!(
            duplex_rows,
            "    {{\"width_bits\": {bits}, \"frames_per_direction\": {frames}, \
             \"events_a\": {}, \"events_b\": {}, \
             \"latency_a2b\": {}, \"latency_b2a\": {}}}",
            d.events_a,
            d.events_b,
            d.a2b.json(),
            d.b2a.json()
        );

        // 2. Stall attribution through a throttled stack.
        let (table, boundaries_json, bp_events) = stall_run(width, frames);
        println!("\nstall attribution (throttled link, {frames} frames):");
        print!("{table}");
        println!("backpressure events recorded: {bp_events}");
        if !stall_rows.is_empty() {
            stall_rows.push_str(",\n");
        }
        let _ = write!(
            stall_rows,
            "    {{\"width_bits\": {bits}, \"backpressure_events\": {bp_events}, \
             \"boundaries\": [{boundaries_json}]}}"
        );

        // 3. Overhead: instrumented-but-disabled vs the recorded baseline.
        let anchor = format!("\"width_bits\": {bits}");
        let base_bpc = baseline
            .as_deref()
            .and_then(|j| scan_number(j, &anchor, "bytes_per_cycle"));
        let base_n = baseline
            .as_deref()
            .and_then(|j| scan_number(j, "\"bench\"", "imix_datagrams"))
            .map_or(if smoke { 40 } else { 200 }, |n| n as usize);
        let (bpc_off, wall_off) = measure_bpc(width, base_n, false);
        let (bpc_on, _) = measure_bpc(width, base_n, true);
        match base_bpc {
            Some(base) => {
                let delta_pct = 100.0 * (base - bpc_off) / base;
                println!(
                    "\noverhead: disabled {bpc_off:.4} B/cyc vs baseline {base:.4} \
                     ({delta_pct:+.2}% loss), enabled {bpc_on:.4} B/cyc, \
                     sim {wall_off:.4} Gbps"
                );
                if bpc_off < base * (1.0 - max_overhead_pct / 100.0) {
                    gate_failures.push(format!(
                        "{bits}-bit disabled-tracing bytes/cycle {bpc_off:.4} more than \
                         {max_overhead_pct}% below baseline {base:.4}"
                    ));
                }
                if !overhead_rows.is_empty() {
                    overhead_rows.push_str(",\n");
                }
                let _ = write!(
                    overhead_rows,
                    "    {{\"width_bits\": {bits}, \"imix_datagrams\": {base_n}, \
                     \"baseline_bytes_per_cycle\": {base:.4}, \
                     \"disabled_bytes_per_cycle\": {bpc_off:.4}, \
                     \"enabled_bytes_per_cycle\": {bpc_on:.4}, \
                     \"loss_pct\": {delta_pct:.2}, \"gate_pct\": {max_overhead_pct}}}"
                );
            }
            None => {
                println!(
                    "\noverhead: no results/BENCH_throughput.json baseline - \
                     measured disabled {bpc_off:.4} / enabled {bpc_on:.4} B/cyc (ungated)"
                );
                if !overhead_rows.is_empty() {
                    overhead_rows.push_str(",\n");
                }
                let _ = write!(
                    overhead_rows,
                    "    {{\"width_bits\": {bits}, \"imix_datagrams\": {base_n}, \
                     \"baseline_bytes_per_cycle\": null, \
                     \"disabled_bytes_per_cycle\": {bpc_off:.4}, \
                     \"enabled_bytes_per_cycle\": {bpc_on:.4}}}"
                );
            }
        }
    }

    // 4. Fleet-path overhead: the observability drive path with nothing
    //    attached vs the plain drive, same 256-link workload.
    let (links, ticks, reps) = if smoke {
        (256, 400, 3)
    } else {
        (256, 2_000, 5)
    };
    let plain = fleet_wall(links, ticks, false, reps);
    let ready = fleet_wall(links, ticks, true, reps);
    let fleet_overhead_pct = 100.0 * (ready - plain) / plain;
    println!(
        "\nfleet path ({links} links, {ticks} traffic ticks): plain {:.1} ms, \
         scrape-ready (no collector) {:.1} ms ({fleet_overhead_pct:+.2}%)",
        plain * 1e3,
        ready * 1e3
    );
    if fleet_overhead_pct > max_fleet_overhead_pct {
        gate_failures.push(format!(
            "fleet sampling path with no collector costs {fleet_overhead_pct:.2}% \
             wall (gate {max_fleet_overhead_pct}%)"
        ));
    }
    let fleet_json = format!(
        "{{\"links\": {links}, \"traffic_ticks\": {ticks}, \"reps\": {reps}, \
         \"plain_wall_s\": {plain:.6}, \"scrape_ready_wall_s\": {ready:.6}, \
         \"overhead_pct\": {fleet_overhead_pct:.2}, \
         \"gate_pct\": {max_fleet_overhead_pct}}}"
    );

    let json = format!(
        "{{\n  \"bench\": \"trace\",\n  \"smoke\": {smoke},\n  \
         \"duplex\": [\n{duplex_rows}\n  ],\n  \
         \"stall\": [\n{stall_rows}\n  ],\n  \
         \"overhead\": [\n{overhead_rows}\n  ],\n  \
         \"fleet_overhead\": {fleet_json}\n}}\n"
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_trace.json", &json).expect("write results/");
    println!("\nwrote results/BENCH_trace.json");

    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}
