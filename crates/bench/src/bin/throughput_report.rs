//! §5 headline claims — throughput: cycles-per-byte of both datapaths
//! × the achievable clock per device ⇒ line rate served.
//!
//! "Making use of a 32-bit bus, the system had to operate at a
//! frequency of at least [78.125 MHz].  It is imperative that at this
//! speed the system is able to process 32 bits every clock cycle."

use p5_bench::{heading, imix_sizes, ip_like_datagram};
use p5_core::{DatapathWidth, P5};
use p5_fpga::devices;
use p5_rtl::synthesize_system;

fn datapath_bytes_per_cycle(width: DatapathWidth) -> f64 {
    let mut p5 = P5::new(width);
    let sizes = imix_sizes(200, 42);
    let mut body = 0u64;
    for (i, len) in sizes.iter().enumerate() {
        p5.submit(0x0021, ip_like_datagram(*len, i as u64));
        body += *len as u64 + 8; // header + FCS overhead counts as work
    }
    let cycles = p5.run_until_idle(100_000_000);
    let _ = body;
    let wire = p5.take_wire_out();
    wire.len() as f64 / cycles as f64
}

fn main() {
    print!(
        "{}",
        heading("Throughput report - cycle model x synthesis clock")
    );
    println!(
        "{:<8} {:<12} {:>12} {:>12} {:>14} {:>12}",
        "width", "device", "bytes/cycle", "fMax (MHz)", "rate (Gbps)", "target"
    );
    for (width, w, dev_list) in [
        (
            DatapathWidth::W8,
            1usize,
            vec![devices::XCV50_4, devices::XC2V40_6],
        ),
        (
            DatapathWidth::W32,
            4usize,
            vec![devices::XCV600_4, devices::XC2V1000_6],
        ),
    ] {
        let bpc = datapath_bytes_per_cycle(width);
        for dev in dev_list {
            let r = synthesize_system(w, &dev);
            let gbps = bpc * r.fmax_post_mhz * 1e6 * 8.0 / 1e9;
            let target = width.line_rate_bps() as f64 / 1e9;
            println!(
                "{:<8} {:<12} {:>12.3} {:>12.1} {:>14.3} {:>9.3}  {}",
                format!("{}-bit", w * 8),
                dev.name,
                bpc,
                r.fmax_post_mhz,
                gbps,
                target,
                if gbps >= target { "MET" } else { "missed" },
            );
        }
    }
    println!(
        "\nshape check (paper): the 32-bit P5 reaches 2.5 Gbps only on \
         Virtex-II technology;\nthe 8-bit baseline tops out at ~625 Mbps \
         regardless of device."
    );
}
