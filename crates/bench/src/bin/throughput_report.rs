//! §5 headline claims — throughput: cycles-per-byte of both datapaths
//! × the achievable clock per device ⇒ line rate served.
//!
//! "Making use of a 32-bit bus, the system had to operate at a
//! frequency of at least [78.125 MHz].  It is imperative that at this
//! speed the system is able to process 32 bits every clock cycle."
//!
//! With `--smoke` the report runs a reduced IMIX (suitable for CI) and
//! still writes `results/BENCH_throughput.json`, so `scripts/check.sh`
//! can gate on the numbers existing and the shape holding.

use std::fmt::Write as _;
use std::time::Instant;

use p5_bench::{heading, imix_sizes, ip_like_datagram};
use p5_core::{DatapathWidth, P5};
use p5_fpga::devices;
use p5_rtl::synthesize_system;

struct DatapathRun {
    bytes_per_cycle: f64,
    cycles_per_byte: f64,
    /// Host-side simulation speed: wire bits emitted per wall-clock
    /// second (how fast the cycle model itself runs, not the modelled
    /// line rate).
    sim_wall_gbps: f64,
}

fn datapath_run(width: DatapathWidth, datagrams: usize) -> DatapathRun {
    let sizes = imix_sizes(datagrams, 42);
    // The cycle count is deterministic, but the wall clock is not: one
    // untimed warm-up, then the identical run repeated with the best
    // time kept, so scheduler noise can't fake a regression.  Shared
    // hosts throttle in windows of tens of milliseconds, so the reps
    // are spread out with short sleeps — one of them lands in a fast
    // window even when a single burst would sit entirely in a slow one.
    let mut best_wall = f64::INFINITY;
    let mut cycles = 0u64;
    let mut wire_len = 0usize;
    for rep in 0..=8 {
        let mut p5 = P5::new(width);
        for (i, len) in sizes.iter().enumerate() {
            p5.submit(0x0021, ip_like_datagram(*len, i as u64)).unwrap();
        }
        let started = Instant::now();
        let c = p5.run_until_idle(100_000_000);
        let wall = started.elapsed().as_secs_f64();
        let wire = p5.take_wire_out();
        if rep == 0 {
            continue; // warm-up
        }
        cycles = c;
        wire_len = wire.len();
        best_wall = best_wall.min(wall);
        std::thread::sleep(std::time::Duration::from_millis(40));
    }
    let bytes_per_cycle = wire_len as f64 / cycles as f64;
    DatapathRun {
        bytes_per_cycle,
        cycles_per_byte: 1.0 / bytes_per_cycle,
        sim_wall_gbps: wire_len as f64 * 8.0 / best_wall / 1e9,
    }
}

/// Host-simulation speed of the pre-vectorisation engine (recorded in
/// EXPERIMENTS.md) — the denominators for the `sim_wall_uplift` column.
const SIM_WALL_BASELINE_W8: f64 = 0.0388;
const SIM_WALL_BASELINE_W32: f64 = 0.1716;

/// Parse `--flag <value>` from the argument list.
fn arg_value(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // Regression gates: fail the run (exit 1) if a width's measured
    // bytes/cycle drops below the floor.  `scripts/check.sh` pins these
    // to the shipped numbers so a cycle-model "optimisation" that costs
    // cycles cannot land silently.
    let min_bpc8 = arg_value(&args, "--min-bpc8");
    let min_bpc32 = arg_value(&args, "--min-bpc32");
    let datagrams = if smoke { 40 } else { 200 };
    print!(
        "{}",
        heading("Throughput report - cycle model x synthesis clock")
    );
    println!(
        "{:<8} {:<12} {:>12} {:>12} {:>14} {:>12}",
        "width", "device", "bytes/cycle", "fMax (MHz)", "rate (Gbps)", "target"
    );
    let mut rows = String::new();
    let mut gate_failures: Vec<String> = Vec::new();
    for (width, w, dev_list) in [
        (
            DatapathWidth::W8,
            1usize,
            vec![devices::XCV50_4, devices::XC2V40_6],
        ),
        (
            DatapathWidth::W32,
            4usize,
            vec![devices::XCV600_4, devices::XC2V1000_6],
        ),
    ] {
        let run = datapath_run(width, datagrams);
        let (floor, sim_baseline) = match width {
            DatapathWidth::W8 => (min_bpc8, SIM_WALL_BASELINE_W8),
            DatapathWidth::W32 => (min_bpc32, SIM_WALL_BASELINE_W32),
        };
        if let Some(floor) = floor {
            // Compare at the JSON's own 4-decimal precision so shipped
            // report numbers can be pinned as floors verbatim.
            let bpc = (run.bytes_per_cycle * 1e4).round() / 1e4;
            if bpc < floor {
                gate_failures.push(format!(
                    "{}-bit bytes/cycle {bpc:.4} below floor {floor:.4}",
                    w * 8,
                ));
            }
        }
        for dev in dev_list {
            let r = synthesize_system(w, &dev);
            let gbps = run.bytes_per_cycle * r.fmax_post_mhz * 1e6 * 8.0 / 1e9;
            let target = width.line_rate_bps() as f64 / 1e9;
            println!(
                "{:<8} {:<12} {:>12.3} {:>12.1} {:>14.3} {:>9.3}  {}",
                format!("{}-bit", w * 8),
                dev.name,
                run.bytes_per_cycle,
                r.fmax_post_mhz,
                gbps,
                target,
                if gbps >= target { "MET" } else { "missed" },
            );
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            let _ = write!(
                rows,
                "    {{\"width_bits\": {}, \"device\": \"{}\", \
                 \"bytes_per_cycle\": {:.4}, \"cycles_per_byte\": {:.4}, \
                 \"fmax_mhz\": {:.1}, \"line_rate_gbps\": {:.4}, \
                 \"target_gbps\": {:.4}, \"met\": {}, \
                 \"sim_wall_gbps\": {:.4}, \
                 \"sim_wall_baseline_gbps\": {:.4}, \
                 \"sim_wall_uplift\": {:.2}}}",
                w * 8,
                dev.name,
                run.bytes_per_cycle,
                run.cycles_per_byte,
                r.fmax_post_mhz,
                gbps,
                target,
                gbps >= target,
                run.sim_wall_gbps,
                sim_baseline,
                run.sim_wall_gbps / sim_baseline,
            );
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"smoke\": {smoke},\n  \
         \"imix_datagrams\": {datagrams},\n  \"rows\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_throughput.json", &json).expect("write results/");
    println!("\nwrote results/BENCH_throughput.json");
    println!(
        "shape check (paper): the 32-bit P5 reaches 2.5 Gbps only on \
         Virtex-II technology;\nthe 8-bit baseline tops out at ~625 Mbps \
         regardless of device."
    );
    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}
