//! §5 headline claims — throughput: cycles-per-byte of both datapaths
//! × the achievable clock per device ⇒ line rate served.
//!
//! "Making use of a 32-bit bus, the system had to operate at a
//! frequency of at least [78.125 MHz].  It is imperative that at this
//! speed the system is able to process 32 bits every clock cycle."
//!
//! With `--smoke` the report runs a reduced IMIX (suitable for CI) and
//! still writes `results/BENCH_throughput.json`, so `scripts/check.sh`
//! can gate on the numbers existing and the shape holding.

use std::fmt::Write as _;
use std::time::Instant;

use p5_bench::{heading, imix_sizes, ip_like_datagram};
use p5_core::{encap, DatapathWidth, RxStage, TxStage, P5};
use p5_fpga::devices;
use p5_rtl::synthesize_system;
use p5_stream::{pool::alloc_count, StreamStage, WireBuf, WordStream};

struct DatapathRun {
    bytes_per_cycle: f64,
    cycles_per_byte: f64,
}

/// The cycle-model reading is fully deterministic (the clock loop takes
/// the same number of cycles every run), so one pass suffices.
fn datapath_run(width: DatapathWidth, datagrams: usize) -> DatapathRun {
    let sizes = imix_sizes(datagrams, 42);
    let mut p5 = P5::new(width);
    // The staged pipeline is the cycle model; the fused path does not
    // advance cycles, so it must stay out of this measurement.
    p5.fused_enabled = false;
    for (i, len) in sizes.iter().enumerate() {
        p5.submit(0x0021, ip_like_datagram(*len, i as u64)).unwrap();
    }
    let cycles = p5.run_until_idle(100_000_000);
    let bytes_per_cycle = p5.take_wire_out().len() as f64 / cycles as f64;
    DatapathRun {
        bytes_per_cycle,
        cycles_per_byte: 1.0 / bytes_per_cycle,
    }
}

struct FastPathRun {
    /// Host-side simulation speed: wire bits through a fused
    /// `TxStage → RxStage` link per wall-clock second (how fast the
    /// simulator runs, not the modelled line rate).
    sim_wall_gbps: f64,
    /// Steady-state heap allocations per datagram (pool misses counted
    /// by `alloc_count`), measured after a warm-up batch has stocked the
    /// buffer shelves.
    allocs_per_frame: f64,
}

/// One IMIX batch through a `TxStage → RxStage` link, swept the way
/// `Stack::step` sweeps (sink→source, drain before offer) until fully
/// drained; delivered frames are popped into `scratch` so every buffer
/// is reused across batches.
fn fast_path_batch(
    tx: &mut TxStage,
    rx: &mut RxStage,
    payloads: &[Vec<u8>],
    input: &mut WireBuf,
    mid: &mut WireBuf,
    out: &mut WireBuf,
    scratch: &mut Vec<u8>,
) {
    for p in payloads {
        encap(0x0021, p, input);
    }
    let mut sweeps = 0u32;
    loop {
        let _ = rx.drain(out);
        let _ = rx.offer(mid);
        let _ = tx.drain(mid);
        let _ = tx.offer(input);
        if input.is_empty() && mid.is_empty() && tx.is_idle() && rx.is_idle() {
            let _ = rx.drain(out);
            break;
        }
        sweeps += 1;
        assert!(sweeps < 10_000_000, "fused link failed to drain");
    }
    while out.pop_frame_into(scratch).is_some() {}
}

fn fast_path_run(width: DatapathWidth, datagrams: usize) -> FastPathRun {
    let sizes = imix_sizes(datagrams, 42);
    let payloads: Vec<Vec<u8>> = sizes
        .iter()
        .enumerate()
        .map(|(i, len)| ip_like_datagram(*len, i as u64))
        .collect();
    let batch_payload: usize = payloads.iter().map(Vec::len).sum();
    // Enough rounds per rep that the timed region moves ≥ ~2 MB of
    // payload — long enough for a stable clock reading even in smoke
    // mode.  The wall clock is noisy where the cycle count is not: one
    // untimed warm-up rep, then the identical rep repeated with the
    // best time kept, so scheduler noise can't fake a regression.
    // Shared hosts throttle in windows of tens of milliseconds, so the
    // reps are spread out with short sleeps — one of them lands in a
    // fast window even when a single burst would sit entirely in a
    // slow one.
    let rounds = (2 * 1024 * 1024 / batch_payload.max(1)).max(1);
    let mut best_wall = f64::INFINITY;
    let mut wire_bytes = 0f64;
    let mut allocs_per_frame = f64::INFINITY;
    for rep in 0..=4 {
        let mut tx = TxStage::new(P5::new(width));
        let mut rx = RxStage::new(P5::new(width));
        let mut input = WireBuf::new();
        let mut mid = WireBuf::new();
        let mut out = WireBuf::new();
        let mut scratch = Vec::new();
        // Warm-up batch: stocks the recycled-buffer shelves, so the
        // timed rounds see the steady state.
        fast_path_batch(
            &mut tx,
            &mut rx,
            &payloads,
            &mut input,
            &mut mid,
            &mut out,
            &mut scratch,
        );
        let bytes0 = StreamStage::stats(&tx).bytes_out;
        let allocs0 = alloc_count::events();
        let started = Instant::now();
        for _ in 0..rounds {
            fast_path_batch(
                &mut tx,
                &mut rx,
                &payloads,
                &mut input,
                &mut mid,
                &mut out,
                &mut scratch,
            );
        }
        let wall = started.elapsed().as_secs_f64();
        let allocs = (alloc_count::events() - allocs0) as f64;
        if rep == 0 {
            continue; // process warm-up
        }
        wire_bytes = (StreamStage::stats(&tx).bytes_out - bytes0) as f64;
        best_wall = best_wall.min(wall);
        allocs_per_frame = allocs_per_frame.min(allocs / (rounds * payloads.len()) as f64);
        std::thread::sleep(std::time::Duration::from_millis(40));
    }
    FastPathRun {
        sim_wall_gbps: wire_bytes * 8.0 / best_wall / 1e9,
        allocs_per_frame,
    }
}

/// Host-simulation speed of the pre-vectorisation engine (recorded in
/// EXPERIMENTS.md) — the denominators for the `sim_wall_uplift` column.
const SIM_WALL_BASELINE_W8: f64 = 0.0388;
const SIM_WALL_BASELINE_W32: f64 = 0.1716;

/// Parse `--flag <value>` from the argument list.
fn arg_value(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // Regression gates: fail the run (exit 1) if a width's measured
    // bytes/cycle drops below the floor.  `scripts/check.sh` pins these
    // to the shipped numbers so a cycle-model "optimisation" that costs
    // cycles cannot land silently.
    let min_bpc8 = arg_value(&args, "--min-bpc8");
    let min_bpc32 = arg_value(&args, "--min-bpc32");
    // Fast-path gates: floors on the fused link's host simulation speed
    // and a ceiling on steady-state heap allocations per datagram.
    let min_sim8 = arg_value(&args, "--min-sim8");
    let min_sim32 = arg_value(&args, "--min-sim32");
    let max_allocs = arg_value(&args, "--max-allocs-per-frame");
    let datagrams = if smoke { 40 } else { 200 };
    print!(
        "{}",
        heading("Throughput report - cycle model x synthesis clock")
    );
    println!(
        "{:<8} {:<12} {:>12} {:>12} {:>14} {:>12}",
        "width", "device", "bytes/cycle", "fMax (MHz)", "rate (Gbps)", "target"
    );
    let mut rows = String::new();
    let mut gate_failures: Vec<String> = Vec::new();
    for (width, w, dev_list) in [
        (
            DatapathWidth::W8,
            1usize,
            vec![devices::XCV50_4, devices::XC2V40_6],
        ),
        (
            DatapathWidth::W32,
            4usize,
            vec![devices::XCV600_4, devices::XC2V1000_6],
        ),
    ] {
        let run = datapath_run(width, datagrams);
        let fast = fast_path_run(width, datagrams);
        let (floor, sim_floor, sim_baseline) = match width {
            DatapathWidth::W8 => (min_bpc8, min_sim8, SIM_WALL_BASELINE_W8),
            DatapathWidth::W32 => (min_bpc32, min_sim32, SIM_WALL_BASELINE_W32),
        };
        if let Some(floor) = floor {
            // Compare at the JSON's own 4-decimal precision so shipped
            // report numbers can be pinned as floors verbatim.
            let bpc = (run.bytes_per_cycle * 1e4).round() / 1e4;
            if bpc < floor {
                gate_failures.push(format!(
                    "{}-bit bytes/cycle {bpc:.4} below floor {floor:.4}",
                    w * 8,
                ));
            }
        }
        if let Some(floor) = sim_floor {
            let gbps = (fast.sim_wall_gbps * 1e4).round() / 1e4;
            if gbps < floor {
                gate_failures.push(format!(
                    "{}-bit fused sim speed {gbps:.4} Gbps below floor {floor:.4}",
                    w * 8,
                ));
            }
        }
        if let Some(ceiling) = max_allocs {
            if fast.allocs_per_frame > ceiling {
                gate_failures.push(format!(
                    "{}-bit allocs/frame {:.4} above ceiling {ceiling:.4}",
                    w * 8,
                    fast.allocs_per_frame,
                ));
            }
        }
        for dev in dev_list {
            let r = synthesize_system(w, &dev);
            let gbps = run.bytes_per_cycle * r.fmax_post_mhz * 1e6 * 8.0 / 1e9;
            let target = width.line_rate_bps() as f64 / 1e9;
            println!(
                "{:<8} {:<12} {:>12.3} {:>12.1} {:>14.3} {:>9.3}  {}",
                format!("{}-bit", w * 8),
                dev.name,
                run.bytes_per_cycle,
                r.fmax_post_mhz,
                gbps,
                target,
                if gbps >= target { "MET" } else { "missed" },
            );
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            let _ = write!(
                rows,
                "    {{\"width_bits\": {}, \"device\": \"{}\", \
                 \"bytes_per_cycle\": {:.4}, \"cycles_per_byte\": {:.4}, \
                 \"fmax_mhz\": {:.1}, \"line_rate_gbps\": {:.4}, \
                 \"target_gbps\": {:.4}, \"met\": {}, \
                 \"sim_wall_gbps\": {:.4}, \
                 \"sim_wall_baseline_gbps\": {:.4}, \
                 \"sim_wall_uplift\": {:.2}, \
                 \"allocs_per_frame\": {:.4}}}",
                w * 8,
                dev.name,
                run.bytes_per_cycle,
                run.cycles_per_byte,
                r.fmax_post_mhz,
                gbps,
                target,
                gbps >= target,
                fast.sim_wall_gbps,
                sim_baseline,
                fast.sim_wall_gbps / sim_baseline,
                fast.allocs_per_frame,
            );
        }
        println!(
            "         {:<12} fused link: sim {:.4} Gbps (uplift {:.1}x vs \
             staged baseline), {:.4} allocs/frame",
            "(host)",
            fast.sim_wall_gbps,
            fast.sim_wall_gbps / sim_baseline,
            fast.allocs_per_frame,
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"smoke\": {smoke},\n  \
         \"imix_datagrams\": {datagrams},\n  \"rows\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_throughput.json", &json).expect("write results/");
    println!("\nwrote results/BENCH_throughput.json");
    println!(
        "shape check (paper): the 32-bit P5 reaches 2.5 Gbps only on \
         Virtex-II technology;\nthe 8-bit baseline tops out at ~625 Mbps \
         regardless of device."
    );
    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}
