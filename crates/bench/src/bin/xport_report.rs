//! Real-endpoint transport report — the p5-xport layer over actual OS
//! sockets, with hard gates.
//!
//! Three experiments:
//!
//! 1. **Bring-up latency** — two [`SessionDriver`]s negotiate
//!    LCP → IPCP over a real TCP loopback socket; wall time from spawn
//!    to both network phases open must stay under `--max-bringup-ms`
//!    (default 5000 — generous because shared CI schedules threads when
//!    it feels like it; measured ~1 ms on the reference host).
//! 2. **Sustained loopback throughput** — 1500-byte datagrams pushed
//!    one way over the same socket; delivered payload must sustain at
//!    least `--min-gbps` (default 0.05; measured ~0.3 Gbps even on a
//!    single-CPU host — the gate only catches the transport path
//!    collapsing, not host variance).
//! 3. **Reconnect recovery** — a deterministic pipe pair is severed
//!    mid-run; both sessions must renegotiate to open within
//!    `--max-reconnect-ms` (default 5000) and every frame delivered
//!    across the whole run must be byte-exact (zero corrupt
//!    deliveries, the same invariant the fault gates enforce).
//!
//! Writes `results/BENCH_xport.json`; any gate failure exits 1.
//! `--smoke` shrinks the throughput workload for CI.

use std::time::{Duration, Instant};

use p5_bench::heading;
use p5_link::LinkBuilder;
use p5_ppp::NegotiationProfile;
use p5_xport::{PipeTransport, SessionDriver, TcpTransport};

const IPV4: u16 = 0x0021;

fn arg_value(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn profile(magic: u32, ip: [u8; 4]) -> NegotiationProfile {
    NegotiationProfile::new().magic(magic).ip(ip)
}

/// Two endpoints over a fresh TCP loopback socket, network phase open.
/// Returns the pair and the bring-up wall time.
fn tcp_pair() -> (SessionDriver, SessionDriver, Duration) {
    let server = TcpTransport::listen("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let started = Instant::now();
    let a = LinkBuilder::new()
        .profile(profile(0xBE9C_0001, [10, 99, 0, 1]))
        .transport(server)
        .build_remote()
        .expect("server endpoint");
    let b = LinkBuilder::new()
        .profile(profile(0xBE9C_0002, [10, 99, 0, 2]))
        .transport(TcpTransport::connect(addr).expect("dial loopback"))
        .build_remote()
        .expect("client endpoint");
    assert!(a.await_network_up(Duration::from_secs(30)), "server IPCP");
    assert!(b.await_network_up(Duration::from_secs(30)), "client IPCP");
    (a, b, started.elapsed())
}

/// Blast identical 1500-byte datagrams a → b until `frames` arrive;
/// returns (wall seconds, delivered payload bytes, corrupt count).
///
/// The source saturates: it keeps offering until enough deliveries
/// land rather than counting sends, so an outage that eats in-flight
/// frames (a link flap right after renegotiation — loss, which PPP
/// permits) delays the run instead of deadlocking it.  Corruption is
/// still counted on every arrival.
fn blast(a: &SessionDriver, b: &SessionDriver, frames: usize) -> (f64, u64, usize) {
    let payload = vec![0xA7u8; 1500];
    let started = Instant::now();
    let mut bytes = 0u64;
    let mut got = 0usize;
    let mut corrupt = 0usize;
    let deadline = Instant::now() + Duration::from_secs(120);
    while got < frames {
        assert!(Instant::now() < deadline, "throughput run stalled");
        if !a.offer(IPV4, &payload).is_admitted() {
            // Admission refused = the driver is behind; burning the
            // core on retries only starves it (acutely so on a
            // single-CPU host).
            std::thread::yield_now();
        }
        for (proto, f) in b.take_deliveries() {
            got += 1;
            bytes += f.len() as u64;
            if proto != IPV4 || f != payload {
                corrupt += 1;
            }
        }
    }
    (started.elapsed().as_secs_f64(), bytes, corrupt)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let max_bringup_ms = arg_value(&args, "--max-bringup-ms").unwrap_or(5_000.0);
    let min_gbps = arg_value(&args, "--min-gbps").unwrap_or(0.05);
    let max_reconnect_ms = arg_value(&args, "--max-reconnect-ms").unwrap_or(5_000.0);

    print!(
        "{}",
        heading("Xport report - TCP bring-up, loopback throughput, reconnect recovery")
    );
    let mut gate_failures: Vec<String> = Vec::new();

    // 1. Bring-up latency over real TCP loopback (best of 3: the gate
    // is about the protocol path, not scheduler warm-up).
    let mut bringup_ms = f64::INFINITY;
    let mut pair = None;
    for _ in 0..3 {
        let (a, b, took) = tcp_pair();
        bringup_ms = bringup_ms.min(took.as_secs_f64() * 1e3);
        pair = Some((a, b));
    }
    println!("TCP loopback LCP+IPCP bring-up: {bringup_ms:.1} ms (best of 3)");
    if bringup_ms > max_bringup_ms {
        gate_failures.push(format!(
            "bring-up took {bringup_ms:.1} ms (gate {max_bringup_ms} ms)"
        ));
    }

    // 2. Sustained one-way throughput on the last negotiated pair.
    let frames = if smoke { 2_000 } else { 20_000 };
    let (a, b) = pair.expect("negotiated pair");
    let (wall_s, bytes, corrupt) = blast(&a, &b, frames);
    let gbps = (bytes as f64 * 8.0) / wall_s / 1e9;
    println!(
        "TCP loopback throughput: {frames} x 1500 B in {:.1} ms = {gbps:.3} Gbps \
         payload ({corrupt} corrupt)",
        wall_s * 1e3
    );
    if gbps < min_gbps {
        gate_failures.push(format!(
            "throughput {gbps:.3} Gbps under the {min_gbps} Gbps gate"
        ));
    }
    if corrupt > 0 {
        gate_failures.push(format!("{corrupt} corrupt deliveries on a clean socket"));
    }
    let a_engine = a.shutdown();
    let io_errors = a_engine.counters.io_errors;
    let short_writes = a_engine.counters.short_writes;
    if io_errors > 0 {
        gate_failures.push(format!("{io_errors} hard I/O errors on loopback"));
    }
    b.shutdown();

    // 3. Reconnect recovery over the deterministic pipe: sever, then
    // measure wall time until both sessions renegotiate to open.
    let (ta, tb) = PipeTransport::pair();
    let ctl = ta.control();
    let a = LinkBuilder::new()
        .profile(profile(0x5EC0_0001, [10, 98, 0, 1]))
        .transport(ta)
        .build_remote()
        .expect("pipe endpoint a");
    let b = LinkBuilder::new()
        .profile(profile(0x5EC0_0002, [10, 98, 0, 2]))
        .transport(tb)
        .build_remote()
        .expect("pipe endpoint b");
    assert!(a.await_network_up(Duration::from_secs(30)));
    assert!(b.await_network_up(Duration::from_secs(30)));
    let (_, pre_bytes, pre_corrupt) = blast(&a, &b, 200);
    ctl.sever();
    let severed = Instant::now();
    // First wait for the Down edge — sampling immediately after the
    // sever still sees both sessions up (the engines observe the
    // closed lanes on their next pass), which would time a vacuous
    // "reconnect" of zero.
    let down_deadline = severed + Duration::from_secs(30);
    while a.is_network_up() && b.is_network_up() {
        assert!(
            Instant::now() < down_deadline,
            "sever was never observed by the sessions"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let reopen_deadline = severed + Duration::from_secs(30);
    while !(a.is_network_up() && b.is_network_up()) {
        assert!(
            Instant::now() < reopen_deadline,
            "sessions never renegotiated after the sever"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let reconnect_ms = severed.elapsed().as_secs_f64() * 1e3;
    let (_, post_bytes, post_corrupt) = blast(&a, &b, 200);
    let corrupt_total = pre_corrupt + post_corrupt;
    println!(
        "pipe sever -> renegotiated in {reconnect_ms:.1} ms; \
         {pre_bytes} B before + {post_bytes} B after, {corrupt_total} corrupt"
    );
    if reconnect_ms > max_reconnect_ms {
        gate_failures.push(format!(
            "reconnect took {reconnect_ms:.1} ms (gate {max_reconnect_ms} ms)"
        ));
    }
    if corrupt_total > 0 {
        gate_failures.push(format!(
            "{corrupt_total} corrupt deliveries across the sever run"
        ));
    }
    let ea = a.shutdown();
    let eb = b.shutdown();
    let disconnects = ea.counters.disconnects + eb.counters.disconnects;
    if disconnects == 0 {
        gate_failures.push("sever was never observed by either endpoint".into());
    }

    let json = format!(
        "{{\n  \"bench\": \"xport\",\n  \"smoke\": {smoke},\n  \
         \"bringup\": {{\"wall_ms\": {bringup_ms:.2}, \"gate_ms\": {max_bringup_ms}}},\n  \
         \"throughput\": {{\"frames\": {frames}, \"payload_bytes\": {bytes}, \
         \"wall_s\": {wall_s:.6}, \"gbps\": {gbps:.4}, \"gate_gbps\": {min_gbps}, \
         \"corrupt\": {corrupt}, \"io_errors\": {io_errors}, \
         \"short_writes\": {short_writes}}},\n  \
         \"reconnect\": {{\"wall_ms\": {reconnect_ms:.2}, \"gate_ms\": {max_reconnect_ms}, \
         \"disconnects\": {disconnects}, \"corrupt\": {corrupt_total}}}\n}}\n"
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_xport.json", &json).expect("write results/");
    println!("\nwrote results/BENCH_xport.json");

    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}
