//! Gate-level simulation engines on the paper's biggest module (the
//! 32-bit escape generate) and the 32-bit CRC unit: the scalar netlist
//! walker versus the compiled bit-parallel tape, which evaluates 64
//! stimulus lanes per pass.  Throughput is reported in *lane-cycles*
//! so the engines compare at equal simulated work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p5_fpga::{CompiledSim, Netlist, Sim, LANES};

const CYCLES: usize = 256;

struct Stim(u64);

impl Stim {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn scalar_cycles(n: &Netlist) -> u64 {
    let mut sim = Sim::new(n);
    let ports: Vec<_> = n.inputs.iter().map(|b| sim.in_port(&b.name)).collect();
    let mut stim = Stim(42);
    let mut acc = 0u64;
    for _ in 0..CYCLES {
        for &p in &ports {
            sim.set_port(p, stim.next());
        }
        sim.step();
    }
    for b in &n.outputs {
        acc ^= sim.get(&b.name);
    }
    acc
}

fn compiled_cycles(n: &Netlist) -> u64 {
    let mut cs = CompiledSim::compile(n);
    let ports: Vec<_> = n.inputs.iter().map(|b| cs.in_port(&b.name)).collect();
    let outs: Vec<_> = n.outputs.iter().map(|b| cs.out_port(&b.name)).collect();
    let mut stim = Stim(42);
    let mut acc = 0u64;
    for _ in 0..CYCLES {
        for &p in &ports {
            cs.set(p, stim.next());
        }
        cs.step();
    }
    for &p in &outs {
        acc ^= cs.get_lane(p, 63);
    }
    acc
}

fn bench_gate_sim(c: &mut Criterion) {
    use p5_rtl::{build_crc_unit, build_escape_gen, SorterStyle};
    let modules = [
        ("escape_gen_w32", build_escape_gen(4, SorterStyle::Barrel)),
        ("crc32_unit_w32", build_crc_unit(p5_crc::FCS32, 4)),
    ];
    let mut g = c.benchmark_group("gate_sim");
    g.sample_size(10);
    for (name, n) in &modules {
        // Scalar: one lane per pass.
        g.throughput(Throughput::Elements(CYCLES as u64));
        g.bench_function(BenchmarkId::new("scalar", name), |b| {
            b.iter(|| scalar_cycles(n))
        });
        // Compiled: 64 lanes per pass, same cycle count.
        g.throughput(Throughput::Elements((CYCLES * LANES) as u64));
        g.bench_function(BenchmarkId::new("compiled_x64", name), |b| {
            b.iter(|| compiled_cycles(n))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gate_sim);
criterion_main!(benches);
