//! Ablation (DESIGN.md §6.3): CRC realisations — bit-serial reference,
//! byte table, and the paper's parallel matrices at 1- and 4-byte word
//! widths.  The matrix engines are the software analogue of the
//! hardware cores; the expected shape is bitwise ≪ table ≤ matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p5_crc::{BitwiseEngine, CrcEngine, MatrixEngine, Slice8Engine, TableEngine, FCS32};

fn bench_crc(c: &mut Criterion) {
    let data = p5_bench::payload_with_flag_density(64 * 1024, 0.02, 99);
    let mut g = c.benchmark_group("ablation_crc");
    g.throughput(Throughput::Bytes(data.len() as u64));

    g.bench_function(BenchmarkId::new("bitwise", "fcs32"), |b| {
        let mut e = BitwiseEngine::new(FCS32);
        b.iter(|| {
            e.reset();
            e.update(&data);
            e.value()
        })
    });
    g.bench_function(BenchmarkId::new("table", "fcs32"), |b| {
        let mut e = TableEngine::new(FCS32);
        b.iter(|| {
            e.reset();
            e.update(&data);
            e.value()
        })
    });
    g.bench_function(BenchmarkId::new("slice8", "fcs32"), |b| {
        let mut e = Slice8Engine::new(FCS32);
        b.iter(|| {
            e.reset();
            e.update(&data);
            e.value()
        })
    });
    for width in [1usize, 4, 8] {
        g.bench_function(BenchmarkId::new("matrix", format!("w{width}")), |b| {
            let mut e = MatrixEngine::new(FCS32, width);
            b.iter(|| {
                e.reset();
                e.update(&data);
                e.value()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_crc);
criterion_main!(benches);
