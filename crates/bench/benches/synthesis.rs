//! Synthesis-flow benchmarks: how long mapping the paper's modules
//! takes, and the sorter-style ablation (one-hot vs barrel) measured in
//! mapped area — reported through criterion's harness so the numbers
//! land in the same report set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p5_fpga::{map, MapMode};
use p5_rtl::{build_escape_gen, SorterStyle};

fn bench_mapping(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis_flow");
    g.sample_size(10);
    for (name, style) in [
        ("escape_gen_w4_onehot", SorterStyle::OneHot),
        ("escape_gen_w4_barrel", SorterStyle::Barrel),
    ] {
        let n = build_escape_gen(4, style);
        g.bench_function(BenchmarkId::new("map_area", name), |b| {
            b.iter(|| map(&n, MapMode::Area).lut_count())
        });
    }
    let n = build_escape_gen(1, SorterStyle::OneHot);
    g.bench_function(BenchmarkId::new("map_area", "escape_gen_w1"), |b| {
        b.iter(|| map(&n, MapMode::Area).lut_count())
    });
    g.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
