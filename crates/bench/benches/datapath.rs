//! Datapath benchmarks: the software (behavioural) PPP codec as the
//! sequential baseline versus the cycle-accurate 8-bit and 32-bit P⁵
//! models, plus the escape-density ablation on the raw stuffing core.
//!
//! Cycle-model numbers measure *simulation* speed; the architectural
//! throughput claim (bytes per clock) is checked in unit tests and
//! printed by `throughput_report`.  The interesting shape here is the
//! W32/W8 simulated-cycles ratio (~4×) and the cost of flag density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p5_bench::payload_with_flag_density;
use p5_core::behavioral::{BehavioralRx, BehavioralTx};
use p5_core::{DatapathWidth, P5};

fn bench_behavioral(c: &mut Criterion) {
    let payload = payload_with_flag_density(1500, 0.02, 5);
    let mut g = c.benchmark_group("software_baseline");
    g.throughput(Throughput::Bytes(1500 * 32));
    g.bench_function("encode_32_frames", |b| {
        b.iter(|| {
            let mut tx = BehavioralTx::new(0xFF);
            let mut wire = Vec::new();
            for _ in 0..32 {
                tx.encode_into(0x0021, &payload, &mut wire);
            }
            wire
        })
    });
    let mut tx = BehavioralTx::new(0xFF);
    let mut wire = Vec::new();
    for _ in 0..32 {
        tx.encode_into(0x0021, &payload, &mut wire);
    }
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("decode_32_frames", |b| {
        b.iter(|| {
            let mut rx = BehavioralRx::new(0xFF);
            rx.decode(&wire)
        })
    });
    g.finish();
}

fn bench_cycle_model(c: &mut Criterion) {
    let payload = payload_with_flag_density(1500, 0.02, 6);
    let mut g = c.benchmark_group("cycle_model");
    g.sample_size(10);
    for (name, width) in [("w8", DatapathWidth::W8), ("w32", DatapathWidth::W32)] {
        g.bench_function(BenchmarkId::new("tx_8_frames", name), |b| {
            b.iter(|| {
                let mut p5 = P5::new(width);
                for _ in 0..8 {
                    p5.submit(0x0021, payload.clone()).unwrap();
                }
                p5.run_until_idle(10_000_000);
                p5.take_wire_out()
            })
        });
    }
    g.finish();
}

fn bench_stuffing_density(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_escape_density");
    for density in [0.0, 0.1, 0.5, 1.0] {
        let body = payload_with_flag_density(64 * 1024, density, 7);
        g.throughput(Throughput::Bytes(body.len() as u64));
        g.bench_function(BenchmarkId::from_parameter(format!("{density}")), |b| {
            b.iter(|| p5_hdlc::stuff(&body, p5_hdlc::Accm::SONET))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_behavioral,
    bench_cycle_model,
    bench_stuffing_density
);
criterion_main!(benches);
