//! Wire-ingest ablation: the receiver's batched, slice-based wire path
//! (`put_wire_in` with a whole line image, `WireBuf` underneath) versus
//! byte-at-a-time delivery — the shape the pre-stream-layer code had
//! with its per-byte `VecDeque` pushes.
//!
//! Flag density matters because flags delimit frames: a dense-flag wire
//! image fragments into many small frames and exercises the
//! frame-boundary bookkeeping, while a 0-density payload is one long
//! escape-free body.  The claim checked in EXPERIMENTS.md is that the
//! batched path is never slower at any density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p5_bench::payload_with_flag_density;
use p5_core::{DatapathWidth, P5};

/// Encode `frames` copies of `payload` into one contiguous wire image.
fn wire_image(payload: &[u8], frames: usize) -> Vec<u8> {
    let mut tx = P5::new(DatapathWidth::W32);
    for _ in 0..frames {
        tx.submit(0x0021, payload.to_vec()).unwrap();
    }
    tx.run_until_idle(100_000_000);
    tx.take_wire_out()
}

fn bench_wire_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_ingest");
    g.sample_size(10);
    for density in [0.0, 0.05, 0.5] {
        let payload = payload_with_flag_density(1500, density, 11);
        let wire = wire_image(&payload, 8);
        g.throughput(Throughput::Bytes(wire.len() as u64));
        g.bench_function(BenchmarkId::new("batched", format!("{density}")), |b| {
            b.iter(|| {
                let mut rx = P5::new(DatapathWidth::W32);
                rx.put_wire_in(&wire);
                rx.run_until_idle(100_000_000);
                rx.take_received()
            })
        });
        g.bench_function(BenchmarkId::new("per_byte", format!("{density}")), |b| {
            b.iter(|| {
                let mut rx = P5::new(DatapathWidth::W32);
                for &byte in &wire {
                    rx.put_wire_in(&[byte]);
                    rx.clock();
                }
                rx.run_until_idle(100_000_000);
                rx.take_received()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_wire_ingest);
criterion_main!(benches);
