//! Determinism contract for [`FaultPlan::fork_link`]: the per-link
//! fault stream is a pure function of `(base seed, link_id, lane)` —
//! never of fork order, of the base plan's RNG state, or of which
//! worker thread happens to drive the link.  A carrier-scale fleet
//! shards links across a pool, so this is what makes chaos runs
//! replayable at any worker count.

use std::sync::{Arc, Mutex};

use p5_fault::{FaultPlan, FaultSpec};
use proptest::prelude::*;

/// A blend with every length-preserving and structural knob active, so
/// RNG consumption differs visibly between divergent streams.
fn chaos_spec() -> FaultSpec {
    FaultSpec::clean()
        .ber(2e-3)
        .burst(5e-4, 0.25, 0.5)
        .slip(1e-3)
        .duplicate(1e-3)
        .truncate(1e-3, 4)
        .abort(1e-3)
        .spurious_flag(1e-3)
}

/// Drive one link's plan over `payload` and return the corrupted
/// stream (chunked at `chunk` to also exercise call-boundary
/// invariance).
fn run_plan(mut plan: FaultPlan, payload: &[u8], chunk: usize) -> (Vec<u8>, p5_fault::FaultStats) {
    let mut out = Vec::new();
    let mut i = 0;
    while i < payload.len() {
        let end = (i + chunk).min(payload.len());
        plan.corrupt_into(&payload[i..end], &mut out);
        i = end;
    }
    (out, plan.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // N links forked concurrently from the same base plan, in an
    // arbitrary thread interleaving, produce byte-identical streams to
    // a serial in-order run.
    #[test]
    fn concurrent_forks_match_serial_run(
        seed in any::<u64>(),
        links in 2usize..9,
        payload in proptest::collection::vec(any::<u8>(), 64..512),
        chunk in 1usize..64,
        spawn_reversed in any::<bool>(),
    ) {
        let base = chaos_spec().compile(seed).expect("valid spec");

        // Serial reference: fork in ascending link order.
        let serial: Vec<_> = (0..links as u64)
            .map(|l| run_plan(base.fork_link(l, 0), &payload, chunk))
            .collect();

        // Concurrent run: every thread forks its own plan from a shared
        // base (fork order scrambled by the spawn order and by the
        // scheduler) and corrupts independently.
        let shared = Arc::new(Mutex::new(base));
        let payload = Arc::new(payload);
        let mut order: Vec<u64> = (0..links as u64).collect();
        if spawn_reversed {
            order.reverse();
        }
        let mut results: Vec<Option<(Vec<u8>, p5_fault::FaultStats)>> = vec![None; links];
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for &l in &order {
                let shared = Arc::clone(&shared);
                let payload = Arc::clone(&payload);
                handles.push((l, s.spawn(move || {
                    let plan = shared
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .fork_link(l, 0);
                    run_plan(plan, &payload, chunk)
                })));
            }
            for (l, h) in handles {
                results[l as usize] = Some(h.join().expect("link thread panicked"));
            }
        });

        for (l, (serial_result, threaded)) in serial.iter().zip(&results).enumerate() {
            let threaded = threaded.as_ref().expect("every link ran");
            prop_assert_eq!(
                &serial_result.0, &threaded.0,
                "link {} fault stream depends on interleaving (seed {})", l, seed
            );
            prop_assert_eq!(
                &serial_result.1, &threaded.1,
                "link {} fault stats depend on interleaving (seed {})", l, seed
            );
        }
    }

    // Distinct (link, lane) coordinates get unrelated streams — in
    // particular the diagonal (link a, lane b) vs (link b, lane a),
    // which a naive additive salt would collide.
    #[test]
    fn distinct_coordinates_get_distinct_streams(
        seed in any::<u64>(),
        a in 0u64..64,
        b in 0u64..64,
    ) {
        let b = if a == b { a + 64 } else { b };
        let base = chaos_spec().compile(seed).expect("valid spec");
        prop_assert_ne!(base.fork_link(a, 0).seed(), base.fork_link(b, 0).seed());
        prop_assert_ne!(base.fork_link(a, 0).seed(), base.fork_link(a, 1).seed());
        prop_assert_ne!(base.fork_link(a, b).seed(), base.fork_link(b, a).seed());
    }
}

/// Forking after the base plan has consumed RNG state yields the same
/// child as forking first — the derivation reads only the original
/// seed.
#[test]
fn fork_link_ignores_rng_state() {
    let mut base = chaos_spec().compile(7).expect("valid spec");
    let before = base.fork_link(3, 1);
    let mut sink = Vec::new();
    base.corrupt_into(&[0xAAu8; 4096], &mut sink);
    let after = base.fork_link(3, 1);
    assert_eq!(before.seed(), after.seed());
    let (s1, st1) = run_plan(before, b"the quick brown fox", 5);
    let (s2, st2) = run_plan(after, b"the quick brown fox", 5);
    assert_eq!(s1, s2);
    assert_eq!(st1, st2);
}
