//! The fault model: what can go wrong on the wire, compiled against a
//! seed into a deterministic impairment schedule.

use p5_stream::Snapshot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;

/// HDLC flag octet — injected by [`FaultKind::SpuriousFlag`] to split a
/// frame in two, exactly the "corrupted flag" failure mode the deframer's
/// runt/FCS counters absorb.
const FLAG: u8 = 0x7E;
/// HDLC escape octet — `ESCAPE, FLAG` on the wire is an abort sequence,
/// which [`FaultKind::Abort`] fabricates mid-frame.
const ESCAPE: u8 = 0x7D;

/// Every impairment the plan can inject, with a stable lowercase name
/// used by trace events, snapshots and the seeded per-kind regressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A uniformly distributed single-bit flip.
    BitError,
    /// Entry into a Gilbert–Elliott bad state (a burst of flips).
    Burst,
    /// A wire octet silently dropped (clock slip).
    Slip,
    /// A wire octet delivered twice.
    Duplicate,
    /// A run of consecutive octets dropped (buffer truncation).
    Truncate,
    /// A fabricated `0x7D 0x7E` abort sequence spliced into the stream.
    Abort,
    /// A spurious `0x7E` flag spliced into the stream.
    SpuriousFlag,
    /// A backpressure storm: the stage deasserts ready for a bounded run
    /// of handshake attempts.
    Stall,
    /// An entire transfer discarded (lossy control-plane ferry).
    TransferLoss,
}

impl FaultKind {
    /// All kinds, for per-kind regression sweeps.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::BitError,
        FaultKind::Burst,
        FaultKind::Slip,
        FaultKind::Duplicate,
        FaultKind::Truncate,
        FaultKind::Abort,
        FaultKind::SpuriousFlag,
        FaultKind::Stall,
        FaultKind::TransferLoss,
    ];

    /// Stable lowercase name (trace `EventKind::Fault { kind }` payload,
    /// snapshot counter names).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::BitError => "bit_error",
            FaultKind::Burst => "burst",
            FaultKind::Slip => "slip",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Truncate => "truncate",
            FaultKind::Abort => "abort",
            FaultKind::SpuriousFlag => "spurious_flag",
            FaultKind::Stall => "stall",
            FaultKind::TransferLoss => "transfer_loss",
        }
    }
}

/// Why a [`FaultSpec`] failed to compile.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// A probability was not a finite value in `[0, 1]`.
    InvalidRate { field: &'static str, value: f64 },
    /// The per-byte structural rates (slip + duplicate + abort + spurious
    /// flag + truncate) must sum to at most 1: they share one draw.
    RateSumExceedsOne { sum: f64 },
    /// A length bound was zero while the rate that uses it was non-zero.
    ZeroBound { field: &'static str },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidRate { field, value } => {
                write!(
                    f,
                    "fault spec: `{field}` = {value} is not a probability in [0, 1]"
                )
            }
            FaultError::RateSumExceedsOne { sum } => {
                write!(f, "fault spec: structural per-byte rates sum to {sum} > 1")
            }
            FaultError::ZeroBound { field } => {
                write!(f, "fault spec: `{field}` is zero but its rate is non-zero")
            }
        }
    }
}

impl Error for FaultError {}

/// Gilbert–Elliott two-state burst model, advanced once per wire *bit*:
/// the channel enters the bad state with probability `p_enter`, flips
/// each bad-state bit with probability `bad_ber`, and leaves the bad
/// state with probability `p_exit` (mean burst length `1 / p_exit` bits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstModel {
    pub p_enter: f64,
    pub p_exit: f64,
    pub bad_ber: f64,
}

/// A bounded backpressure storm: each [`FaultPlan::stall_gate`] call
/// outside a storm starts one with probability `p_start`, lasting a
/// uniform `1..=max_len` further calls.  Bounded by construction so a
/// faulted stack can always make progress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallStorm {
    pub p_start: f64,
    pub max_len: u32,
}

/// The impairment mix, as plain data.  Start from [`FaultSpec::clean`]
/// and layer faults on with the fluent setters:
///
/// ```
/// use p5_fault::FaultSpec;
/// let spec = FaultSpec::clean().ber(1e-6).slip(1e-5).stall(0.01, 16);
/// let plan = spec.compile(42).unwrap();
/// # let _ = plan;
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Uniform per-bit flip probability (good-state BER).
    pub ber: f64,
    /// Optional Gilbert–Elliott burst overlay.
    pub burst: Option<BurstModel>,
    /// Per-byte probability of dropping the octet.
    pub slip: f64,
    /// Per-byte probability of delivering the octet twice.
    pub duplicate: f64,
    /// Per-byte probability of starting a truncation run.
    pub truncate: f64,
    /// Maximum octets removed by one truncation run.
    pub max_truncate_len: usize,
    /// Per-byte probability of splicing in a `0x7D 0x7E` abort.
    pub abort: f64,
    /// Per-byte probability of splicing in a spurious `0x7E` flag.
    pub spurious_flag: f64,
    /// Optional backpressure storms.
    pub stall: Option<StallStorm>,
    /// Per-transfer probability that [`FaultPlan::lose_transfer`] says to
    /// drop the whole transfer.
    pub transfer_loss: f64,
}

impl FaultSpec {
    /// The identity spec: every rate zero, a transparent wire.
    pub fn clean() -> Self {
        FaultSpec::default()
    }

    pub fn ber(mut self, ber: f64) -> Self {
        self.ber = ber;
        self
    }

    pub fn burst(mut self, p_enter: f64, p_exit: f64, bad_ber: f64) -> Self {
        self.burst = Some(BurstModel {
            p_enter,
            p_exit,
            bad_ber,
        });
        self
    }

    pub fn slip(mut self, rate: f64) -> Self {
        self.slip = rate;
        self
    }

    pub fn duplicate(mut self, rate: f64) -> Self {
        self.duplicate = rate;
        self
    }

    pub fn truncate(mut self, rate: f64, max_len: usize) -> Self {
        self.truncate = rate;
        self.max_truncate_len = max_len;
        self
    }

    pub fn abort(mut self, rate: f64) -> Self {
        self.abort = rate;
        self
    }

    pub fn spurious_flag(mut self, rate: f64) -> Self {
        self.spurious_flag = rate;
        self
    }

    pub fn stall(mut self, p_start: f64, max_len: u32) -> Self {
        self.stall = Some(StallStorm { p_start, max_len });
        self
    }

    pub fn transfer_loss(mut self, rate: f64) -> Self {
        self.transfer_loss = rate;
        self
    }

    /// Whether any structural (length-changing) fault is enabled.  When
    /// false, [`FaultPlan::corrupt_into`] degenerates to a copy plus
    /// [`FaultPlan::corrupt_in_place`].
    pub fn is_structural(&self) -> bool {
        self.slip > 0.0
            || self.duplicate > 0.0
            || self.truncate > 0.0
            || self.abort > 0.0
            || self.spurious_flag > 0.0
    }

    /// Bind the spec to a seed.  Shorthand for [`FaultPlan::compile`].
    pub fn compile(self, seed: u64) -> Result<FaultPlan, FaultError> {
        FaultPlan::compile(self, seed)
    }

    fn validate(&self) -> Result<(), FaultError> {
        fn rate(field: &'static str, value: f64) -> Result<(), FaultError> {
            if value.is_finite() && (0.0..=1.0).contains(&value) {
                Ok(())
            } else {
                Err(FaultError::InvalidRate { field, value })
            }
        }
        rate("ber", self.ber)?;
        rate("slip", self.slip)?;
        rate("duplicate", self.duplicate)?;
        rate("truncate", self.truncate)?;
        rate("abort", self.abort)?;
        rate("spurious_flag", self.spurious_flag)?;
        rate("transfer_loss", self.transfer_loss)?;
        if let Some(b) = self.burst {
            rate("burst.p_enter", b.p_enter)?;
            rate("burst.p_exit", b.p_exit)?;
            rate("burst.bad_ber", b.bad_ber)?;
            if b.p_exit == 0.0 {
                // A burst that can never end is an unbounded outage, not
                // an impairment: refuse it.
                return Err(FaultError::ZeroBound {
                    field: "burst.p_exit",
                });
            }
        }
        if let Some(s) = self.stall {
            rate("stall.p_start", s.p_start)?;
            if s.p_start > 0.0 && s.max_len == 0 {
                return Err(FaultError::ZeroBound {
                    field: "stall.max_len",
                });
            }
        }
        if self.truncate > 0.0 && self.max_truncate_len == 0 {
            return Err(FaultError::ZeroBound {
                field: "max_truncate_len",
            });
        }
        let sum = self.slip + self.duplicate + self.truncate + self.abort + self.spurious_flag;
        if sum > 1.0 {
            return Err(FaultError::RateSumExceedsOne { sum });
        }
        Ok(())
    }
}

/// What the plan has injected so far — one counter per [`FaultKind`]
/// plus the traffic baseline they are rates over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Octets that passed through `corrupt_in_place`/`corrupt_into`.
    pub bytes_processed: u64,
    pub bit_errors: u64,
    pub bursts: u64,
    pub slips: u64,
    pub duplicates: u64,
    pub truncations: u64,
    /// Octets removed by truncation runs (≥ `truncations`).
    pub truncated_bytes: u64,
    pub aborts_injected: u64,
    pub flags_injected: u64,
    /// Storms started.
    pub stalls: u64,
    /// Handshake attempts refused inside storms.
    pub stall_cycles: u64,
    pub transfers_lost: u64,
}

impl FaultStats {
    /// The counter for one fault kind (the traffic counters and
    /// `stall_cycles`/`truncated_bytes` are separate fields).
    pub fn count(&self, kind: FaultKind) -> u64 {
        match kind {
            FaultKind::BitError => self.bit_errors,
            FaultKind::Burst => self.bursts,
            FaultKind::Slip => self.slips,
            FaultKind::Duplicate => self.duplicates,
            FaultKind::Truncate => self.truncations,
            FaultKind::Abort => self.aborts_injected,
            FaultKind::SpuriousFlag => self.flags_injected,
            FaultKind::Stall => self.stalls,
            FaultKind::TransferLoss => self.transfers_lost,
        }
    }

    /// Total injected events across all kinds.
    pub fn total_injected(&self) -> u64 {
        FaultKind::ALL.iter().map(|&k| self.count(k)).sum()
    }

    /// Fold another stats block in (e.g. the two directions of a duplex
    /// link, or a channel plan plus a stage plan).
    pub fn absorb(&mut self, other: &FaultStats) {
        self.bytes_processed += other.bytes_processed;
        self.bit_errors += other.bit_errors;
        self.bursts += other.bursts;
        self.slips += other.slips;
        self.duplicates += other.duplicates;
        self.truncations += other.truncations;
        self.truncated_bytes += other.truncated_bytes;
        self.aborts_injected += other.aborts_injected;
        self.flags_injected += other.flags_injected;
        self.stalls += other.stalls;
        self.stall_cycles += other.stall_cycles;
        self.transfers_lost += other.transfers_lost;
    }

    pub fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::new("fault");
        s.push_counter("fault_bytes_processed", self.bytes_processed);
        for kind in FaultKind::ALL {
            s.push_counter(format!("fault_{}", kind.name()), self.count(kind));
        }
        s.push_counter("fault_truncated_bytes", self.truncated_bytes);
        s.push_counter("fault_stall_cycles", self.stall_cycles);
        s
    }
}

/// A [`FaultSpec`] bound to a seed: the deterministic impairment
/// schedule.  All mutation happens through `corrupt_*`, `stall_gate` and
/// `lose_transfer`; the same call sequence over the same bytes replays
/// identically for a given `(spec, seed)`, independent of chunking.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    seed: u64,
    rng: StdRng,
    /// Gilbert–Elliott channel state, carried across calls.
    in_burst: bool,
    /// Octets still to swallow from an active truncation run.
    truncate_remaining: usize,
    /// Handshake refusals left in the active stall storm.
    stall_remaining: u32,
    stats: FaultStats,
}

impl FaultPlan {
    /// Validate the spec and bind it to `seed`.
    pub fn compile(spec: FaultSpec, seed: u64) -> Result<Self, FaultError> {
        spec.validate()?;
        Ok(FaultPlan {
            spec,
            seed,
            rng: StdRng::seed_from_u64(seed),
            in_burst: false,
            truncate_remaining: 0,
            stall_remaining: 0,
            stats: FaultStats::default(),
        })
    }

    /// A transparent plan (the identity spec — useful as a default).
    pub fn clean(seed: u64) -> Self {
        FaultPlan::compile(FaultSpec::clean(), seed).expect("clean spec always compiles")
    }

    /// Derive an independent plan with the same spec for another lane
    /// (e.g. the reverse direction of a duplex link).  Derivation uses
    /// the *original* seed, not the current RNG state, so forks are
    /// reproducible no matter when they are taken.
    pub fn fork(&self, lane: u64) -> Self {
        let salt = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane.wrapping_add(1));
        FaultPlan::compile(self.spec.clone(), self.seed ^ salt).expect("spec already validated")
    }

    /// Link-aware fork: derive the plan for `(link_id, lane)` in a
    /// multi-link fleet.  Like [`FaultPlan::fork`] the derivation is a
    /// pure function of the *original* seed — never of RNG state or of
    /// fork order — so every worker that derives the plan for a given
    /// link gets a byte-identical fault stream no matter how the fleet
    /// interleaves links across threads.  The two coordinates are mixed
    /// through a splitmix64-style finalizer so that `(link 0, lane 1)`
    /// and `(link 1, lane 0)` land in unrelated streams (a plain
    /// `link_id + lane` salt would collide on such diagonals).
    pub fn fork_link(&self, link_id: u64, lane: u64) -> Self {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(link_id.wrapping_add(1)))
            .wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(lane.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        FaultPlan::compile(self.spec.clone(), z).expect("spec already validated")
    }

    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    pub fn snapshot(&self) -> Snapshot {
        self.stats.snapshot()
    }

    /// Flip bits in place (uniform BER plus the burst overlay).  This is
    /// the *length-preserving* subset of the model — what a physical
    /// section can do to scrambled payload — and is what the SONET
    /// channel applies.
    pub fn corrupt_in_place(&mut self, bytes: &mut [u8]) {
        self.stats.bytes_processed += bytes.len() as u64;
        if self.spec.ber <= 0.0 && self.spec.burst.is_none() {
            return;
        }
        for b in bytes {
            *b = self.impair_byte(*b);
        }
    }

    /// Run the full model over `input`, appending the impaired stream to
    /// `out`: bit errors first, then the per-byte structural faults
    /// (slip, duplication, truncation, fabricated aborts and flags).
    pub fn corrupt_into(&mut self, input: &[u8], out: &mut Vec<u8>) {
        if !self.spec.is_structural() {
            let start = out.len();
            out.extend_from_slice(input);
            self.corrupt_in_place(&mut out[start..]);
            return;
        }
        out.reserve(input.len());
        let bit_errors_on = self.spec.ber > 0.0 || self.spec.burst.is_some();
        for &raw in input {
            self.stats.bytes_processed += 1;
            let b = if bit_errors_on {
                self.impair_byte(raw)
            } else {
                raw
            };
            if self.truncate_remaining > 0 {
                self.truncate_remaining -= 1;
                self.stats.truncated_bytes += 1;
                continue;
            }
            // One structural draw per delivered byte; the rates partition
            // [0, 1) (validated at compile).
            let u: f64 = self.rng.gen();
            let mut hi = self.spec.slip;
            if u < hi {
                self.stats.slips += 1;
                continue;
            }
            hi += self.spec.duplicate;
            if u < hi {
                out.push(b);
                out.push(b);
                self.stats.duplicates += 1;
                continue;
            }
            hi += self.spec.truncate;
            if u < hi {
                // The current byte is the first casualty of the run.
                self.truncate_remaining = self.rng.gen_range(0..self.spec.max_truncate_len);
                self.stats.truncations += 1;
                self.stats.truncated_bytes += 1;
                continue;
            }
            hi += self.spec.abort;
            if u < hi {
                out.push(b);
                out.push(ESCAPE);
                out.push(FLAG);
                self.stats.aborts_injected += 1;
                continue;
            }
            hi += self.spec.spurious_flag;
            if u < hi {
                out.push(b);
                out.push(FLAG);
                self.stats.flags_injected += 1;
                continue;
            }
            out.push(b);
        }
    }

    /// One backpressure decision: `true` means "deassert ready this
    /// handshake".  Storms are bounded by [`StallStorm::max_len`];
    /// [`FaultPlan::release_stall`] cancels one early (used by
    /// `FaultStage::finish` so chaos never wedges a draining stack).
    pub fn stall_gate(&mut self) -> bool {
        if self.stall_remaining > 0 {
            self.stall_remaining -= 1;
            self.stats.stall_cycles += 1;
            return true;
        }
        let Some(storm) = self.spec.stall else {
            return false;
        };
        if storm.p_start > 0.0 && self.rng.gen_bool(storm.p_start) {
            self.stall_remaining = self.rng.gen_range(0..storm.max_len);
            self.stats.stalls += 1;
            self.stats.stall_cycles += 1;
            return true;
        }
        false
    }

    /// Cancel any stall storm in progress.
    pub fn release_stall(&mut self) {
        self.stall_remaining = 0;
    }

    /// One whole-transfer loss decision (for control-plane ferries that
    /// move complete frames rather than byte streams).
    pub fn lose_transfer(&mut self) -> bool {
        if self.spec.transfer_loss > 0.0 && self.rng.gen_bool(self.spec.transfer_loss) {
            self.stats.transfers_lost += 1;
            true
        } else {
            false
        }
    }

    /// Advance the bit-level model over one octet.
    fn impair_byte(&mut self, mut b: u8) -> u8 {
        for bit in 0..8u8 {
            let flip = match self.spec.burst {
                Some(burst) => {
                    if self.in_burst {
                        let f = burst.bad_ber > 0.0 && self.rng.gen_bool(burst.bad_ber);
                        if self.rng.gen_bool(burst.p_exit) {
                            self.in_burst = false;
                        }
                        f
                    } else {
                        if burst.p_enter > 0.0 && self.rng.gen_bool(burst.p_enter) {
                            self.in_burst = true;
                            self.stats.bursts += 1;
                        }
                        self.spec.ber > 0.0 && self.rng.gen_bool(self.spec.ber)
                    }
                }
                None => self.spec.ber > 0.0 && self.rng.gen_bool(self.spec.ber),
            };
            if flip {
                b ^= 1 << bit;
                self.stats.bit_errors += 1;
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_is_transparent() {
        let mut p = FaultPlan::clean(1);
        let mut bytes = *b"untouched payload";
        p.corrupt_in_place(&mut bytes);
        assert_eq!(&bytes, b"untouched payload");
        let mut out = Vec::new();
        p.corrupt_into(b"still untouched", &mut out);
        assert_eq!(out, b"still untouched");
        assert!(!p.stall_gate());
        assert!(!p.lose_transfer());
        assert_eq!(p.stats().total_injected(), 0);
        assert_eq!(p.stats().bytes_processed, 17 + 15);
    }

    #[test]
    fn same_seed_same_faults_regardless_of_chunking() {
        let data: Vec<u8> = (0..20_000u32).map(|i| (i * 7) as u8).collect();
        let spec = FaultSpec::clean()
            .ber(1e-3)
            .slip(2e-3)
            .duplicate(2e-3)
            .truncate(1e-3, 9)
            .abort(1e-3)
            .spurious_flag(1e-3);
        let mut whole = Vec::new();
        let mut one = spec.clone().compile(99).unwrap();
        one.corrupt_into(&data, &mut whole);

        let mut chunked = Vec::new();
        let mut two = spec.compile(99).unwrap();
        // Ragged chunk sizes, including empty calls.
        let mut i = 0;
        for (k, step) in [1usize, 0, 7, 64, 3, 1000, 13].iter().cycle().enumerate() {
            if i >= data.len() {
                break;
            }
            let end = (i + step + (k % 2)).min(data.len());
            two.corrupt_into(&data[i..end], &mut chunked);
            i = end;
        }
        assert_eq!(whole, chunked);
        assert_eq!(one.stats(), two.stats());
        assert!(one.stats().total_injected() > 0, "faults actually fired");
    }

    #[test]
    fn every_structural_kind_fires_and_is_counted() {
        let data = vec![0xA5u8; 50_000];
        let mut p = FaultSpec::clean()
            .slip(2e-3)
            .duplicate(2e-3)
            .truncate(1e-3, 5)
            .abort(1e-3)
            .spurious_flag(1e-3)
            .compile(7)
            .unwrap();
        let mut out = Vec::new();
        p.corrupt_into(&data, &mut out);
        let st = p.stats();
        for kind in [
            FaultKind::Slip,
            FaultKind::Duplicate,
            FaultKind::Truncate,
            FaultKind::Abort,
            FaultKind::SpuriousFlag,
        ] {
            assert!(st.count(kind) > 0, "{} never fired", kind.name());
        }
        // Length bookkeeping closes exactly: every input byte is either
        // delivered, slipped, or truncated; dups/aborts/flags add octets.
        let expect = data.len() as i64 - st.slips as i64 - st.truncated_bytes as i64
            + st.duplicates as i64
            + 2 * st.aborts_injected as i64
            + st.flags_injected as i64;
        assert_eq!(out.len() as i64, expect);
    }

    #[test]
    fn burst_model_clusters_flips() {
        let mut p = FaultSpec::clean()
            .burst(1e-4, 1.0 / 16.0, 0.5)
            .compile(3)
            .unwrap();
        let mut bytes = vec![0u8; 100_000];
        p.corrupt_in_place(&mut bytes);
        let st = p.stats();
        assert!(st.bursts > 0, "bursts injected");
        assert!(
            st.bit_errors > 2 * st.bursts,
            "bursts flip multiple bits each: {} flips over {} bursts",
            st.bit_errors,
            st.bursts
        );
    }

    #[test]
    fn stall_storms_are_bounded_and_releasable() {
        let mut p = FaultSpec::clean().stall(1.0, 8).compile(11).unwrap();
        assert!(p.stall_gate(), "p_start = 1 always storms");
        let mut run = 1u32;
        while p.stall_gate() {
            run += 1;
            assert!(
                run < 100,
                "storm re-arms every call at p_start = 1, but each run is bounded"
            );
            if run == 50 {
                p.release_stall();
                // After release the next refusal is a *new* storm.
                let before = p.stats().stalls;
                let _ = p.stall_gate();
                assert!(p.stats().stalls >= before);
                break;
            }
        }
        assert!(p.stats().stall_cycles > 0);
    }

    #[test]
    fn fork_is_deterministic_and_decorrelated() {
        let base = FaultSpec::clean().ber(1e-3).compile(21).unwrap();
        let mut a1 = base.fork(1);
        let mut a2 = base.fork(1);
        let mut b = base.fork(2);
        let mut x = vec![0u8; 4096];
        let mut y = vec![0u8; 4096];
        let mut z = vec![0u8; 4096];
        a1.corrupt_in_place(&mut x);
        a2.corrupt_in_place(&mut y);
        b.corrupt_in_place(&mut z);
        assert_eq!(x, y, "same lane → same stream");
        assert_ne!(x, z, "different lane → different stream");
    }

    #[test]
    fn bad_specs_are_rejected_with_typed_errors() {
        assert!(matches!(
            FaultSpec::clean().ber(1.5).compile(0),
            Err(FaultError::InvalidRate { field: "ber", .. })
        ));
        assert!(matches!(
            FaultSpec::clean().slip(0.6).duplicate(0.6).compile(0),
            Err(FaultError::RateSumExceedsOne { .. })
        ));
        assert!(matches!(
            FaultSpec::clean().truncate(0.1, 0).compile(0),
            Err(FaultError::ZeroBound {
                field: "max_truncate_len"
            })
        ));
        assert!(matches!(
            FaultSpec::clean().burst(0.1, 0.0, 0.5).compile(0),
            Err(FaultError::ZeroBound {
                field: "burst.p_exit"
            })
        ));
        let e = FaultSpec::clean().ber(f64::NAN).compile(0).unwrap_err();
        assert!(e.to_string().contains("ber"), "Display names the field");
    }

    #[test]
    fn snapshot_exports_per_kind_counters() {
        let mut p = FaultSpec::clean().ber(1e-2).compile(5).unwrap();
        let mut bytes = vec![0u8; 1000];
        p.corrupt_in_place(&mut bytes);
        let s = p.snapshot();
        assert_eq!(s.get("fault_bytes_processed"), Some(1000));
        assert!(s.get("fault_bit_error").unwrap() > 0);
        assert_eq!(s.get("fault_slip"), Some(0));
    }
}
