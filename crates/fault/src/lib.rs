//! p5-fault — deterministic, seedable fault injection for the P5 stack.
//!
//! The paper's receiver exists to survive a hostile wire: Escape Detect
//! must re-delineate on 0x7E flags after arbitrary corruption, and the
//! FCS check plus the OAM counters must turn bit errors into *counted
//! drops*, never delivered garbage.  This crate is the adversary that
//! proves it.  A [`FaultSpec`] describes an impairment mix (uniform and
//! Gilbert–Elliott burst bit errors, byte slip/duplication/truncation,
//! injected aborts and spurious flags, stall storms, whole-transfer
//! loss); [`FaultPlan::compile`] binds it to a seed; a [`FaultStage`]
//! composes the plan into any `WordStream` boundary.
//!
//! Two properties are load-bearing:
//!
//! * **Determinism** — the same `(spec, seed)` produces the same fault
//!   sequence for the same byte stream, regardless of how the stream is
//!   chunked across `offer` calls.  Every RNG draw is a function of the
//!   byte stream and prior draws only, so soak failures replay exactly.
//! * **Boundedness** — stall storms are finite ([`StallStorm::max_len`])
//!   and `FaultStage::finish` releases any storm in progress, so a
//!   faulted `Stack` can always drain; chaos never wedges the harness.
//!
//! See DESIGN.md §14 for the fault model and the recovery invariants the
//! rest of the workspace checks against it.

mod plan;
mod stage;

pub use plan::{BurstModel, FaultError, FaultKind, FaultPlan, FaultSpec, FaultStats, StallStorm};
pub use stage::FaultStage;
