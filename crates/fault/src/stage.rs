//! [`FaultStage`] — a [`FaultPlan`] as a composable [`StreamStage`], so
//! chaos drops into any `stack!`/`LinkBuilder` assembly exactly where a
//! cable would be.
//!
//! The stage carries *untagged* wire octets (like the SONET stages: below
//! HDLC there are no frame boundaries).  `offer` first consults the
//! plan's stall gate — a storm is a deasserted `in_ready`, which the
//! `Stack` boundary counters record as blocked transfers — then runs the
//! full corruption model over the accepted bytes.  `finish` releases any
//! storm in progress, so a faulted stack always drains.

use crate::plan::{FaultKind, FaultPlan, FaultStats};
use p5_stream::{
    Event, EventKind, Observable, Poll, Snapshot, StageStats, StreamStage, TraceSink, WireBuf,
    WordStream,
};

pub struct FaultStage {
    plan: FaultPlan,
    scratch: Vec<u8>,
    stats: StageStats,
    sink: Option<Box<dyn TraceSink + Send>>,
    /// Handshake attempts, the stage's trace clock.
    calls: u64,
}

impl FaultStage {
    pub fn new(plan: FaultPlan) -> Self {
        FaultStage {
            plan,
            scratch: Vec::new(),
            stats: StageStats::default(),
            sink: None,
            calls: 0,
        }
    }

    /// Install a trace sink: each injected fault becomes an
    /// `EventKind::Fault { kind }` event stamped with the stage's
    /// handshake count.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink + Send>) {
        self.sink = if sink.enabled() { Some(sink) } else { None };
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Emit one `Fault` event per kind that fired since `before`.
    fn trace_faults(&mut self, before: FaultStats) {
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        let after = self.plan.stats();
        for kind in FaultKind::ALL {
            for _ in before.count(kind)..after.count(kind) {
                sink.record(Event {
                    cycle: self.calls,
                    kind: EventKind::Fault { kind: kind.name() },
                });
            }
        }
    }
}

impl WordStream for FaultStage {
    fn offer(&mut self, input: &mut WireBuf) -> Poll {
        self.calls += 1;
        let before = self.plan.stats();
        if self.plan.stall_gate() {
            self.stats.stall_cycles += 1;
            self.trace_faults(before);
            return Poll::Blocked;
        }
        let n = input.len();
        if n == 0 {
            return Poll::Ready(0);
        }
        self.plan.corrupt_into(input.as_slice(), &mut self.scratch);
        input.consume(n);
        self.stats.words_in += 1;
        self.trace_faults(before);
        Poll::Ready(n)
    }

    fn drain(&mut self, output: &mut WireBuf) -> Poll {
        self.calls += 1;
        if self.scratch.is_empty() {
            self.stats.bubble_cycles += 1;
            return Poll::Ready(0);
        }
        let n = self.scratch.len();
        output.push_slice(&self.scratch);
        self.scratch.clear();
        self.stats.words_out += 1;
        self.stats.bytes_out += n as u64;
        Poll::Ready(n)
    }
}

impl Observable for FaultStage {
    fn snapshot(&self) -> Snapshot {
        let mut s = self.stats.snapshot("fault");
        s.absorb(&self.plan.snapshot());
        s
    }
}

impl StreamStage for FaultStage {
    fn name(&self) -> &'static str {
        "fault"
    }

    fn is_idle(&self) -> bool {
        self.scratch.is_empty()
    }

    fn finish(&mut self) {
        // Chaos must not wedge a draining stack: end any storm now.
        self.plan.release_stall();
    }

    fn stats(&self) -> StageStats {
        let mut s = self.stats;
        s.note_occupancy(self.scratch.len());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultSpec;
    use p5_stream::{stack, SharedRecorder};

    #[test]
    fn clean_stage_is_transparent() {
        let mut st = FaultStage::new(FaultPlan::clean(1));
        let mut input = WireBuf::new();
        input.push_slice(b"across the boundary");
        assert_eq!(st.offer(&mut input), Poll::Ready(19));
        let mut out = WireBuf::new();
        assert_eq!(st.drain(&mut out), Poll::Ready(19));
        assert_eq!(out.as_slice(), b"across the boundary");
        assert!(st.is_idle());
    }

    #[test]
    fn storms_block_then_pass_and_finish_releases() {
        let plan = FaultSpec::clean().stall(1.0, 4).compile(2).unwrap();
        let mut st = FaultStage::new(plan);
        let mut input = WireBuf::new();
        input.push_slice(b"held");
        // p_start = 1: every offer is refused while the storm re-arms.
        assert!(st.offer(&mut input).is_blocked());
        st.finish();
        // finish() ends the current storm; the next offer may still start
        // a new one (p_start = 1), so drain through a stack which keeps
        // retrying — the bounded storms guarantee progress.
        let plan = FaultSpec::clean().stall(0.5, 4).compile(3).unwrap();
        let mut s = stack![FaultStage::new(plan)];
        s.input().push_slice(&vec![0x55u8; 4096]);
        assert!(s.run_until_idle(10_000), "bounded storms cannot wedge");
        s.finish();
        assert_eq!(s.output().len(), 4096);
    }

    #[test]
    fn injected_faults_become_trace_events() {
        let plan = FaultSpec::clean().spurious_flag(0.05).compile(9).unwrap();
        let rec = SharedRecorder::with_capacity(512);
        let mut st = FaultStage::new(plan);
        st.set_trace(Box::new(rec.clone()));
        let mut input = WireBuf::new();
        input.push_slice(&[0u8; 500]);
        st.offer(&mut input);
        let events = rec.events();
        assert!(!events.is_empty(), "flag injections traced");
        assert!(events.iter().all(|e| e.kind
            == EventKind::Fault {
                kind: "spurious_flag"
            }));
        assert_eq!(
            events.len() as u64,
            st.plan().stats().flags_injected,
            "one event per injection"
        );
    }

    #[test]
    fn snapshot_folds_stage_and_plan_counters() {
        let plan = FaultSpec::clean().ber(1e-2).compile(4).unwrap();
        let mut s = stack![FaultStage::new(plan)];
        s.input().push_slice(&[0xFFu8; 2000]);
        assert!(s.run_until_idle(100));
        let snaps = s.snapshots();
        let snap = snaps.iter().find(|s| s.scope == "fault").unwrap();
        assert_eq!(snap.get("fault_bytes_processed"), Some(2000));
        assert!(snap.get("fault_bit_error").unwrap() > 0);
    }
}
