//! Property tests: framing is lossless and robust for arbitrary payloads,
//! including pathological flag/escape runs, under arbitrary stream
//! chunkings.

use p5_hdlc::{
    destuff, stuff, Accm, DeframeEvent, Deframer, DeframerConfig, DestuffOutcome, Framer,
    FramerConfig,
};
use proptest::prelude::*;

/// Payload generator biased toward flags and escapes — the adversarial
/// input for the byte sorter.
fn nasty_body() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(p5_hdlc::FLAG),
            3 => Just(p5_hdlc::ESCAPE),
            4 => any::<u8>(),
        ],
        0..600,
    )
}

/// Blocks of (clean-run length, clean byte, special-run length,
/// special byte): assembled by [`assemble_straddling`] into payloads
/// whose flag/escape clusters straddle every possible `u64`
/// word-boundary phase of the SWAR scanner.
#[allow(clippy::type_complexity)]
fn straddling_blocks() -> impl Strategy<Value = Vec<(usize, u8, usize, u8)>> {
    proptest::collection::vec(
        (
            0usize..19,
            any::<u8>(),
            0usize..5,
            prop_oneof![Just(p5_hdlc::FLAG), Just(p5_hdlc::ESCAPE)],
        ),
        0..40,
    )
}

fn assemble_straddling(blocks: &[(usize, u8, usize, u8)]) -> Vec<u8> {
    let mut body = Vec::new();
    for &(clean_len, clean_byte, special_len, special) in blocks {
        let b = if clean_byte == p5_hdlc::FLAG || clean_byte == p5_hdlc::ESCAPE {
            0x42
        } else {
            clean_byte
        };
        body.extend(std::iter::repeat_n(b, clean_len));
        body.extend(std::iter::repeat_n(special, special_len));
    }
    body
}

/// The byte-at-a-time reference stuffer the SWAR path must match.
fn stuff_ref(body: &[u8], accm: Accm) -> Vec<u8> {
    let mut out = Vec::new();
    for &b in body {
        if accm.must_escape(b) {
            out.push(p5_hdlc::ESCAPE);
            out.push(b ^ p5_hdlc::ESCAPE_XOR);
        } else {
            out.push(b);
        }
    }
    out
}

proptest! {
    #[test]
    fn stuff_destuff_identity(body in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let wire = stuff(&body, Accm::SONET);
        prop_assert!(!wire.contains(&p5_hdlc::FLAG));
        prop_assert_eq!(destuff(&wire), DestuffOutcome::Ok(body));
    }

    #[test]
    fn stuff_destuff_identity_async_accm(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let wire = stuff(&body, Accm::ASYNC_DEFAULT);
        prop_assert!(wire.iter().all(|&b| b != p5_hdlc::FLAG && (b >= 0x20 || b == p5_hdlc::ESCAPE)));
        prop_assert_eq!(destuff(&wire), DestuffOutcome::Ok(body));
    }

    #[test]
    fn frame_sequence_round_trips(bodies in proptest::collection::vec(nasty_body(), 1..8)) {
        let bodies: Vec<Vec<u8>> = bodies.into_iter().filter(|b| !b.is_empty()).collect();
        let mut framer = Framer::new(FramerConfig::default());
        let mut wire = Vec::new();
        for b in &bodies {
            framer.encode_into(b, &mut wire);
        }
        let mut deframer = Deframer::new(DeframerConfig {
            max_body: 4096,
            ..Default::default()
        });
        let events = deframer.push_bytes(&wire);
        let expect: Vec<DeframeEvent> =
            bodies.iter().map(|b| DeframeEvent::Frame(b.clone())).collect();
        prop_assert_eq!(events, expect);
    }

    #[test]
    fn chunking_never_changes_events(
        bodies in proptest::collection::vec(nasty_body(), 1..5),
        chunk in 1usize..17,
    ) {
        let bodies: Vec<Vec<u8>> = bodies.into_iter().filter(|b| !b.is_empty()).collect();
        let mut framer = Framer::new(FramerConfig::default());
        let mut wire = Vec::new();
        for b in &bodies {
            framer.encode_into(b, &mut wire);
        }
        let big_cfg = DeframerConfig { max_body: 4096, ..Default::default() };
        let whole = Deframer::new(big_cfg).push_bytes(&wire);
        let mut chunked = Vec::new();
        let mut d = Deframer::new(big_cfg);
        for c in wire.chunks(chunk) {
            chunked.extend(d.push_bytes(c));
        }
        prop_assert_eq!(whole, chunked);
    }

    #[test]
    fn swar_stuffer_matches_bytewise_on_straddling_runs(blocks in straddling_blocks()) {
        let body = assemble_straddling(&blocks);
        let wire = stuff(&body, Accm::SONET);
        prop_assert_eq!(&wire, &stuff_ref(&body, Accm::SONET));
        prop_assert_eq!(destuff(&wire), DestuffOutcome::Ok(body));
    }

    #[test]
    fn swar_stuffer_matches_bytewise_on_random_bodies(body in nasty_body()) {
        prop_assert_eq!(stuff(&body, Accm::SONET), stuff_ref(&body, Accm::SONET));
        // A non-zero ACCM must keep the exact bytewise semantics too.
        let accm = Accm(0x0000_A005);
        prop_assert_eq!(stuff(&body, accm), stuff_ref(&body, accm));
    }

    #[test]
    fn bulk_push_bytes_matches_push_byte(blocks in straddling_blocks(), chunk in 1usize..33) {
        let body = assemble_straddling(&blocks);
        // The word-scanning push_bytes must be indistinguishable from the
        // per-byte state machine on any wire image, including mid-frame
        // escapes straddling the chunk and word boundaries.
        let mut framer = Framer::new(FramerConfig::default());
        let mut wire = Vec::new();
        framer.encode_into(&body, &mut wire);
        wire.extend_from_slice(&body); // trailing junk, possibly flag-laden
        let cfg = DeframerConfig { max_body: 4096, ..Default::default() };
        let mut bulk = Deframer::new(cfg);
        let mut bulk_events = Vec::new();
        for c in wire.chunks(chunk) {
            bulk_events.extend(bulk.push_bytes(c));
        }
        let mut bytewise = Deframer::new(cfg);
        let mut byte_events = Vec::new();
        for &b in &wire {
            byte_events.extend(bytewise.push_byte(b));
        }
        prop_assert_eq!(bulk_events, byte_events);
        prop_assert_eq!(bulk.stats(), bytewise.stats());
    }

    #[test]
    fn bulk_push_respects_giant_cap(body in proptest::collection::vec(any::<u8>(), 0..900)) {
        // The bulk accept path must drop and un-CRC exactly the same
        // octets past the giant cap as the per-byte path.
        let cfg = DeframerConfig { max_body: 64, ..Default::default() };
        let mut framer = Framer::new(FramerConfig::default());
        let mut wire = Vec::new();
        framer.encode_into(&body, &mut wire);
        let bulk = Deframer::new(cfg).push_bytes(&wire);
        let mut bytewise = Deframer::new(cfg);
        let mut byte_events = Vec::new();
        for &b in &wire {
            byte_events.extend(bytewise.push_byte(b));
        }
        prop_assert_eq!(bulk, byte_events);
    }

    #[test]
    fn random_garbage_never_yields_a_frame_event_with_bad_fcs(
        garbage in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        // Whatever junk arrives, every Frame event must carry a body whose
        // FCS verified; we can't check that from outside directly, but we
        // can check the decoder never panics and the stats balance.
        let mut d = Deframer::default();
        let events = d.push_bytes(&garbage);
        let s = *d.stats();
        let discards = s.fcs_errors + s.aborts + s.runts + s.giants;
        prop_assert_eq!(events.len() as u64, s.frames_ok + discards);
    }
}
