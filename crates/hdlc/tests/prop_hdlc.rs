//! Property tests: framing is lossless and robust for arbitrary payloads,
//! including pathological flag/escape runs, under arbitrary stream
//! chunkings.

use p5_hdlc::{
    destuff, stuff, Accm, DeframeEvent, Deframer, DeframerConfig, DestuffOutcome, Framer,
    FramerConfig,
};
use proptest::prelude::*;

/// Payload generator biased toward flags and escapes — the adversarial
/// input for the byte sorter.
fn nasty_body() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(p5_hdlc::FLAG),
            3 => Just(p5_hdlc::ESCAPE),
            4 => any::<u8>(),
        ],
        0..600,
    )
}

proptest! {
    #[test]
    fn stuff_destuff_identity(body in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let wire = stuff(&body, Accm::SONET);
        prop_assert!(!wire.contains(&p5_hdlc::FLAG));
        prop_assert_eq!(destuff(&wire), DestuffOutcome::Ok(body));
    }

    #[test]
    fn stuff_destuff_identity_async_accm(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let wire = stuff(&body, Accm::ASYNC_DEFAULT);
        prop_assert!(wire.iter().all(|&b| b != p5_hdlc::FLAG && (b >= 0x20 || b == p5_hdlc::ESCAPE)));
        prop_assert_eq!(destuff(&wire), DestuffOutcome::Ok(body));
    }

    #[test]
    fn frame_sequence_round_trips(bodies in proptest::collection::vec(nasty_body(), 1..8)) {
        let bodies: Vec<Vec<u8>> = bodies.into_iter().filter(|b| !b.is_empty()).collect();
        let mut framer = Framer::new(FramerConfig::default());
        let mut wire = Vec::new();
        for b in &bodies {
            framer.encode_into(b, &mut wire);
        }
        let mut deframer = Deframer::new(DeframerConfig {
            max_body: 4096,
            ..Default::default()
        });
        let events = deframer.push_bytes(&wire);
        let expect: Vec<DeframeEvent> =
            bodies.iter().map(|b| DeframeEvent::Frame(b.clone())).collect();
        prop_assert_eq!(events, expect);
    }

    #[test]
    fn chunking_never_changes_events(
        bodies in proptest::collection::vec(nasty_body(), 1..5),
        chunk in 1usize..17,
    ) {
        let bodies: Vec<Vec<u8>> = bodies.into_iter().filter(|b| !b.is_empty()).collect();
        let mut framer = Framer::new(FramerConfig::default());
        let mut wire = Vec::new();
        for b in &bodies {
            framer.encode_into(b, &mut wire);
        }
        let big_cfg = DeframerConfig { max_body: 4096, ..Default::default() };
        let whole = Deframer::new(big_cfg).push_bytes(&wire);
        let mut chunked = Vec::new();
        let mut d = Deframer::new(big_cfg);
        for c in wire.chunks(chunk) {
            chunked.extend(d.push_bytes(c));
        }
        prop_assert_eq!(whole, chunked);
    }

    #[test]
    fn random_garbage_never_yields_a_frame_event_with_bad_fcs(
        garbage in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        // Whatever junk arrives, every Frame event must carry a body whose
        // FCS verified; we can't check that from outside directly, but we
        // can check the decoder never panics and the stats balance.
        let mut d = Deframer::default();
        let events = d.push_bytes(&garbage);
        let s = *d.stats();
        let discards = s.fcs_errors + s.aborts + s.runts + s.giants;
        prop_assert_eq!(events.len() as u64, s.frames_ok + discards);
    }
}
