//! [`StreamStage`] adapters for the behavioural golden model, so the
//! same `Stack` harness drives the golden model and the cycle-accurate
//! device interchangeably.
//!
//! * [`FramerStage`] — tagged frame bodies in, untagged stuffed wire
//!   octets out (flags, FCS, escapes).
//! * [`DeframerStage`] — untagged wire octets in, good frame bodies out
//!   as tagged frames; discards are visible through
//!   [`Deframer::stats`] and the stage's [`StageStats::rejects`].

use crate::{DeframeEvent, Deframer, DeframerConfig, Framer, FramerConfig};
use p5_stream::{
    shrink_scratch, Observable, Poll, Snapshot, StageStats, StreamStage, WireBuf, WordStream,
};

/// Golden-model HDLC encoder as a stage.
pub struct FramerStage {
    framer: Framer,
    scratch: Vec<u8>,
    wire: Vec<u8>,
    stats: StageStats,
}

impl FramerStage {
    pub fn new(config: FramerConfig) -> Self {
        FramerStage {
            framer: Framer::new(config),
            scratch: Vec::new(),
            wire: Vec::new(),
            stats: StageStats::default(),
        }
    }

    pub fn framer(&self) -> &Framer {
        &self.framer
    }
}

impl Default for FramerStage {
    fn default() -> Self {
        Self::new(FramerConfig::default())
    }
}

impl WordStream for FramerStage {
    fn offer(&mut self, input: &mut WireBuf) -> Poll {
        let mut accepted = 0;
        while input.frame_ready() {
            let meta = input
                .pop_frame_into(&mut self.scratch)
                .expect("frame_ready() guarantees a complete frame");
            accepted += meta.len;
            self.stats.words_in += 1;
            if meta.abort {
                // An aborted body never hits the line in the golden
                // model (the hardware aborts *on* the line instead).
                self.stats.rejects += 1;
                continue;
            }
            self.framer.encode_into(&self.scratch, &mut self.wire);
        }
        // A jumbo frame must not pin its capacity for the rest of the
        // run (the wire buffer shrinks after drain).
        shrink_scratch(&mut self.scratch);
        self.stats.note_occupancy(self.wire.len());
        Poll::Ready(accepted)
    }

    fn drain(&mut self, output: &mut WireBuf) -> Poll {
        if self.wire.is_empty() {
            return Poll::Ready(0);
        }
        let n = self.wire.len();
        output.push_slice(&self.wire);
        self.wire.clear();
        shrink_scratch(&mut self.wire);
        self.stats.words_out += 1;
        self.stats.bytes_out += n as u64;
        Poll::Ready(n)
    }
}

impl Observable for FramerStage {
    fn snapshot(&self) -> Snapshot {
        self.stats.snapshot("hdlc-framer")
    }
}

impl StreamStage for FramerStage {
    fn name(&self) -> &'static str {
        "hdlc-framer"
    }

    fn is_idle(&self) -> bool {
        self.wire.is_empty()
    }

    fn stats(&self) -> StageStats {
        self.stats
    }
}

/// Golden-model HDLC decoder as a stage.
pub struct DeframerStage {
    deframer: Deframer,
    bodies: WireBuf,
    stats: StageStats,
}

impl DeframerStage {
    pub fn new(config: DeframerConfig) -> Self {
        DeframerStage {
            deframer: Deframer::new(config),
            bodies: WireBuf::new(),
            stats: StageStats::default(),
        }
    }

    pub fn deframer(&self) -> &Deframer {
        &self.deframer
    }
}

impl Default for DeframerStage {
    fn default() -> Self {
        Self::new(DeframerConfig::default())
    }
}

impl WordStream for DeframerStage {
    fn offer(&mut self, input: &mut WireBuf) -> Poll {
        let n = input.len();
        if n == 0 {
            return Poll::Ready(0);
        }
        for ev in self.deframer.push_bytes(input.as_slice()) {
            match ev {
                DeframeEvent::Frame(body) => {
                    self.bodies.push_frame(&body);
                    self.stats.words_in += 1;
                }
                DeframeEvent::Discard(_) => self.stats.rejects += 1,
            }
        }
        input.consume(n);
        self.stats.note_occupancy(self.bodies.len());
        Poll::Ready(n)
    }

    fn drain(&mut self, output: &mut WireBuf) -> Poll {
        let n = output.move_from(&mut self.bodies, usize::MAX);
        self.stats.words_out += u64::from(n > 0);
        self.stats.bytes_out += n as u64;
        Poll::Ready(n)
    }
}

impl Observable for DeframerStage {
    /// Stage flow counters folded together with the deframer's own
    /// receive-error counters (`RxStats`).
    fn snapshot(&self) -> Snapshot {
        let mut s = self.stats.snapshot("hdlc-deframer");
        s.absorb(&self.deframer.stats().snapshot());
        s
    }
}

impl StreamStage for DeframerStage {
    fn name(&self) -> &'static str {
        "hdlc-deframer"
    }

    fn is_idle(&self) -> bool {
        self.bodies.is_empty()
    }

    fn stats(&self) -> StageStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p5_stream::{stack, Throttle};

    #[test]
    fn framer_then_deframer_stack_is_identity() {
        let mut s = stack![FramerStage::default(), DeframerStage::default()];
        let bodies: Vec<Vec<u8>> = vec![
            b"hello hdlc".to_vec(),
            vec![0x7E, 0x7D, 0x20, 0x7D, 0x5E],
            (0..=255).collect(),
        ];
        for b in &bodies {
            s.input().push_frame(b);
        }
        assert!(s.run_until_idle(100));
        let mut got = Vec::new();
        while let Some((f, meta)) = s.output().pop_frame() {
            assert!(!meta.abort);
            got.push(f);
        }
        assert_eq!(got, bodies);
    }

    #[test]
    fn deframer_stage_counts_discards() {
        let mut framer = FramerStage::default();
        let mut deframer = DeframerStage::default();
        let mut wire = WireBuf::new();
        let mut bodies = WireBuf::new();
        bodies.push_frame(b"good frame");
        framer.offer(&mut bodies);
        framer.drain(&mut wire);
        // Corrupt a payload byte: the frame must be discarded, and the
        // discard must be observable in both stats surfaces.
        let mut bad = wire.take_vec();
        bad[3] ^= 0x01;
        wire.push_slice(&bad);
        deframer.offer(&mut wire);
        assert_eq!(deframer.stats().rejects, 1);
        assert_eq!(deframer.deframer().stats().fcs_errors, 1);
        let mut out = WireBuf::new();
        deframer.drain(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn aborted_input_frames_never_reach_the_wire() {
        let mut s = stack![FramerStage::default(), DeframerStage::default()];
        s.input().push_frame(b"kept");
        s.input().push_tagged(b"dropped", true, true, true);
        s.input().push_frame(b"also kept");
        assert!(s.run_until_idle(100));
        let mut got = Vec::new();
        while let Some((f, _)) = s.output().pop_frame() {
            got.push(f);
        }
        assert_eq!(got, vec![b"kept".to_vec(), b"also kept".to_vec()]);
        assert_eq!(s.stage_stats()[0].1.rejects, 1);
    }

    #[test]
    fn stage_scratch_shrinks_back_after_a_jumbo_frame() {
        use p5_stream::SCRATCH_HIGH_WATER;
        let mut stage = FramerStage::default();
        let mut input = WireBuf::new();
        let mut wire = WireBuf::new();
        // Flag-heavy jumbo: stuffing doubles it, so both scratch and the
        // wire staging vector balloon well past the high-water mark.
        input.push_frame(&vec![0x7Eu8; 4 * SCRATCH_HIGH_WATER]);
        stage.offer(&mut input);
        assert!(stage.wire.capacity() > SCRATCH_HIGH_WATER);
        stage.drain(&mut wire);
        // The next (ordinary) frame releases the ballooned capacity.
        input.push_frame(b"back to normal");
        stage.offer(&mut input);
        stage.drain(&mut wire);
        assert!(
            stage.scratch.capacity() <= SCRATCH_HIGH_WATER,
            "scratch stuck at {}",
            stage.scratch.capacity()
        );
        assert!(
            stage.wire.capacity() <= SCRATCH_HIGH_WATER,
            "wire staging stuck at {}",
            stage.wire.capacity()
        );
    }

    #[test]
    fn throttled_golden_stack_preserves_order() {
        // Odd-length stall patterns avoid phase-locking with the two
        // gate draws a Stack step performs per stage.
        let mut s = stack![
            Throttle::new(FramerStage::default(), vec![true, false, true]),
            Throttle::new(
                DeframerStage::default(),
                vec![false, true, true, false, true]
            ),
        ];
        let bodies: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i, 0x7E, i ^ 0x5A]).collect();
        for b in &bodies {
            s.input().push_frame(b);
        }
        assert!(s.run_until_idle(2000));
        let mut got = Vec::new();
        while let Some((f, _)) = s.output().pop_frame() {
            got.push(f);
        }
        assert_eq!(got, bodies);
    }
}
