//! HDLC-like octet-stuffed framing (RFC 1662), the framing method PPP and
//! the paper's P⁵ use on SONET/SDH links.
//!
//! This crate is the *behavioural golden model*: a byte-at-a-time software
//! encoder/decoder with exactly the semantics the hardware datapath in
//! `p5-core` must reproduce cycle-accurately.  The equivalence tests in
//! `p5-core` and the workspace integration tests compare the two
//! byte-for-byte on random and adversarial traffic.
//!
//! Framing rules implemented (RFC 1662 §4):
//!
//! * frames are delimited by the flag octet `0x7E`; a single flag may both
//!   close one frame and open the next;
//! * within a frame, `0x7E` and the escape octet `0x7D` (and any octet
//!   selected by the async control character map) are sent as `0x7D`
//!   followed by the octet XOR `0x20` — the paper's worked example
//!   `31 33 7E 96 → 31 33 7D 5E 96`;
//! * `0x7D 0x7E` (escape immediately followed by a flag) aborts the frame
//!   in progress;
//! * the FCS (16- or 32-bit, complemented, least-significant octet first)
//!   covers the unstuffed frame body and is checked via the magic residue.
//!
//! ```
//! use p5_hdlc::{Framer, FramerConfig, Deframer, DeframeEvent};
//!
//! let mut framer = Framer::new(FramerConfig::default());
//! let mut wire = Vec::new();
//! framer.encode_into(&[0x31, 0x33, 0x7E, 0x96], &mut wire); // paper's example
//! assert_eq!(&wire[1..6], &[0x31, 0x33, 0x7D, 0x5E, 0x96]); // 7E -> 7D 5E
//!
//! let events = Deframer::default().push_bytes(&wire);
//! assert_eq!(events, vec![DeframeEvent::Frame(vec![0x31, 0x33, 0x7E, 0x96])]);
//! ```

pub mod bitstuff;
pub mod deframer;
pub mod framer;
pub mod scan;
pub mod stream;
pub mod stuff;

pub use bitstuff::{bitstuff_frame, bitstuff_overhead_bits, bitunstuff_stream};
pub use deframer::{DeframeEvent, Deframer, DeframerConfig, FrameError, RxStats};
pub use framer::{Framer, FramerConfig};
pub use stream::{DeframerStage, FramerStage};
pub use stuff::{destuff, stuff, stuff_into, Accm, DestuffOutcome};

/// The HDLC flag octet delimiting every frame.
pub const FLAG: u8 = 0x7E;
/// The control-escape octet.
pub const ESCAPE: u8 = 0x7D;
/// Escaped octets are XORed with this (complementing bit 5, as the paper
/// puts it: "the original character with its sixth bit complimented").
pub const ESCAPE_XOR: u8 = 0x20;

/// Which frame check sequence a link runs (LCP-negotiable; the paper's P⁵
/// "will incorporate 32-bit CRC checking" by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FcsMode {
    /// No FCS appended or checked (LCP "Null FCS" alternative).
    None,
    /// 16-bit FCS (RFC 1662 appendix C.1).
    Fcs16,
    /// 32-bit FCS (RFC 1662 appendix C.2) — the P⁵ default.
    #[default]
    Fcs32,
}

impl FcsMode {
    /// FCS length in octets.
    #[allow(clippy::len_without_is_empty)] // `is_none()` plays that role
    pub fn len(&self) -> usize {
        match self {
            FcsMode::None => 0,
            FcsMode::Fcs16 => 2,
            FcsMode::Fcs32 => 4,
        }
    }

    pub fn is_none(&self) -> bool {
        matches!(self, FcsMode::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcs_mode_lengths() {
        assert_eq!(FcsMode::None.len(), 0);
        assert_eq!(FcsMode::Fcs16.len(), 2);
        assert_eq!(FcsMode::Fcs32.len(), 4);
        assert!(FcsMode::None.is_none());
        assert!(!FcsMode::Fcs32.is_none());
    }

    #[test]
    fn default_is_fcs32() {
        // Paper: "For accuracy purposes the system will incorporate 32-bit
        // CRC checking."
        assert_eq!(FcsMode::default(), FcsMode::Fcs32);
    }
}
