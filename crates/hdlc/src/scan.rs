//! SWAR word scanning for the framing hot paths.
//!
//! The stuffing/destuffing loops spend almost all their time on octets
//! that are neither `0x7E` nor `0x7D`.  These helpers test eight wire
//! octets per machine word using the classic zero-byte detector
//! (`haszero(v) = (v - 0x01…01) & ~v & 0x80…80`, applied to `v ^
//! splat(needle)`), so escape-free runs can be located word-at-a-time
//! and copied in bulk with `extend_from_slice`.  Byte-exact semantics
//! are unchanged: any word containing a special octet falls back to
//! the per-byte path.

use crate::{ESCAPE, FLAG};

const LSB: u64 = 0x0101_0101_0101_0101;
const MSB: u64 = 0x8080_8080_8080_8080;

/// Broadcast one byte to every lane of a `u64`.
#[inline]
#[must_use]
pub const fn splat(b: u8) -> u64 {
    LSB * b as u64
}

/// Does any byte lane of `word` equal `needle`?
#[inline]
#[must_use]
pub const fn any_byte_eq(word: u64, needle: u8) -> bool {
    let x = word ^ splat(needle);
    x.wrapping_sub(LSB) & !x & MSB != 0
}

/// Does any byte lane of `word` hold a flag (`0x7E`) or escape
/// (`0x7D`) octet?
#[inline]
#[must_use]
pub const fn any_special(word: u64) -> bool {
    any_byte_eq(word, FLAG) || any_byte_eq(word, ESCAPE)
}

/// Length of the prefix of `bytes` that is free of flag and escape
/// octets: whole words are tested eight-at-a-time, then the boundary
/// is pinned down bytewise.
#[inline]
#[must_use]
pub fn clean_prefix_len(bytes: &[u8]) -> usize {
    let mut i = 0;
    while i + 8 <= bytes.len() {
        let w = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte chunk"));
        if any_special(w) {
            break;
        }
        i += 8;
    }
    while i < bytes.len() && bytes[i] != FLAG && bytes[i] != ESCAPE {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_broadcasts() {
        assert_eq!(splat(0x7E), 0x7E7E_7E7E_7E7E_7E7E);
        assert_eq!(splat(0x00), 0);
    }

    #[test]
    fn detector_finds_each_lane() {
        for lane in 0..8 {
            let mut bytes = [0x55u8; 8];
            bytes[lane] = FLAG;
            assert!(any_special(u64::from_le_bytes(bytes)), "flag lane {lane}");
            bytes[lane] = ESCAPE;
            assert!(any_special(u64::from_le_bytes(bytes)), "esc lane {lane}");
        }
        assert!(!any_special(u64::from_le_bytes([0x55; 8])));
        // Near misses: 0x7C and 0x7F must not trigger.
        assert!(!any_special(u64::from_le_bytes([0x7C; 8])));
        assert!(!any_special(u64::from_le_bytes([0x7F; 8])));
    }

    #[test]
    fn clean_prefix_exact_boundary() {
        for n in 0..40 {
            let mut v = vec![0xAAu8; n];
            assert_eq!(clean_prefix_len(&v), n, "no specials, len {n}");
            for pos in 0..n {
                v[pos] = FLAG;
                assert_eq!(clean_prefix_len(&v), pos, "flag at {pos} of {n}");
                v[pos] = ESCAPE;
                assert_eq!(clean_prefix_len(&v), pos, "escape at {pos} of {n}");
                v[pos] = 0xAA;
            }
        }
    }
}
