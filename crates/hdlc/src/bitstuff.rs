//! Bit-synchronous HDLC framing (RFC 1662 §5): zero-bit insertion
//! instead of octet stuffing.
//!
//! PPP over SONET/SDH settled on the octet-stuffed variant the P⁵
//! implements (and RFC 2615 §6 discusses why), but bit-synchronous
//! framing is the classic alternative on synchronous links and makes a
//! natural baseline: its overhead is a *fraction of a bit per run of
//! ones* instead of a whole byte per flag/escape octet.  The
//! `ablation_escape_density` criterion group compares the two
//! transparency mechanisms' expansion.
//!
//! Rules: after five consecutive `1` bits of frame data, a `0` is
//! inserted; the flag `01111110` delimits frames; seven or more ones in
//! a row is an abort.

use crate::FLAG;

/// Bit-level writer producing a byte stream (LSB-first transmission
/// order, matching the octet conventions used elsewhere in this crate).
#[derive(Debug, Default, Clone)]
struct BitWriter {
    out: Vec<u8>,
    cur: u8,
    nbits: u8,
}

impl BitWriter {
    fn push_bit(&mut self, bit: bool) {
        if bit {
            self.cur |= 1 << self.nbits;
        }
        self.nbits += 1;
        if self.nbits == 8 {
            self.out.push(self.cur);
            self.cur = 0;
            self.nbits = 0;
        }
    }

    /// Pad the final partial byte with trailing flag bits, as a
    /// continuously-flagged line would.
    fn finish(mut self) -> Vec<u8> {
        let mut i = 0;
        while self.nbits != 0 {
            self.push_bit((FLAG >> i) & 1 == 1);
            i += 1;
        }
        self.out
    }
}

/// Encode one frame with zero-bit insertion, bracketed by flags.
pub fn bitstuff_frame(body: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::default();
    // Opening flag, bit-verbatim.
    for i in 0..8 {
        w.push_bit((FLAG >> i) & 1 == 1);
    }
    let mut run = 0u8;
    for &byte in body {
        for i in 0..8 {
            let bit = (byte >> i) & 1 == 1;
            w.push_bit(bit);
            if bit {
                run += 1;
                if run == 5 {
                    w.push_bit(false); // inserted zero
                    run = 0;
                }
            } else {
                run = 0;
            }
        }
    }
    for i in 0..8 {
        w.push_bit((FLAG >> i) & 1 == 1);
    }
    w.finish()
}

/// Decode outcome for one bit-stuffed region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitDeframe {
    /// Complete frames recovered, in order.
    Frames(Vec<Vec<u8>>),
}

/// Decode a bit-stuffed stream: delete inserted zeros, split on flags.
/// Aborts (≥7 ones) and non-octet-aligned frames are dropped.
pub fn bitunstuff_stream(stream: &[u8]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    let mut bits: Vec<bool> = Vec::new();
    let mut run = 0u8;
    let mut in_frame = false;
    let mut aborted = false;
    let mut recent: u8 = 0; // last 8 raw bits, newest in MSB position 7

    for &byte in stream {
        for i in 0..8 {
            let bit = (byte >> i) & 1 == 1;
            recent = (recent >> 1) | ((bit as u8) << 7);
            if bit {
                run += 1;
                if run >= 7 {
                    // Abort: discard the frame in progress.
                    aborted = true;
                    bits.clear();
                    in_frame = false;
                }
                if in_frame && !aborted {
                    bits.push(true);
                }
            } else {
                if run == 5 {
                    // Inserted zero: delete.
                    run = 0;
                    continue;
                }
                if run == 6 {
                    // A flag just completed (01111110 ends on this 0).
                    run = 0;
                    if in_frame && !aborted {
                        // Remove the flag's 7 bits that leaked into the
                        // collected data (0111111 pattern minus inserted
                        // handling): the flag bits were never pushed
                        // because each push happened before we could
                        // know — handle by trimming the trailing 6 ones
                        // and one zero we pushed.
                        //
                        // Simpler: the six ones of the flag *were*
                        // pushed (run 1..=6 with in_frame); pop them and
                        // the zero that opened the flag is this bit.
                        for _ in 0..6 {
                            bits.pop();
                        }
                        // The flag's leading 0 was pushed too.
                        bits.pop();
                        if !bits.is_empty() && bits.len().is_multiple_of(8) {
                            let mut body = vec![0u8; bits.len() / 8];
                            for (k, &bv) in bits.iter().enumerate() {
                                if bv {
                                    body[k / 8] |= 1 << (k % 8);
                                }
                            }
                            frames.push(body);
                        }
                    }
                    bits.clear();
                    in_frame = true;
                    aborted = false;
                    continue;
                }
                run = 0;
                if in_frame && !aborted {
                    bits.push(false);
                }
            }
        }
    }
    frames
}

/// Wire overhead of bit stuffing for a body, in bits (excluding flags).
pub fn bitstuff_overhead_bits(body: &[u8]) -> usize {
    let mut run = 0u8;
    let mut inserted = 0usize;
    for &byte in body {
        for i in 0..8 {
            if (byte >> i) & 1 == 1 {
                run += 1;
                if run == 5 {
                    inserted += 1;
                    run = 0;
                }
            } else {
                run = 0;
            }
        }
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stuff::{stuff, Accm};

    #[test]
    fn round_trip_simple() {
        let body = b"hello bit stuffing".to_vec();
        let wire = bitstuff_frame(&body);
        assert_eq!(bitunstuff_stream(&wire), vec![body]);
    }

    #[test]
    fn round_trip_all_ones() {
        // 0xFF bytes force maximal zero insertion.
        let body = vec![0xFF; 32];
        let wire = bitstuff_frame(&body);
        assert!(wire.len() > body.len() + 2, "zeros were inserted");
        assert_eq!(bitunstuff_stream(&wire), vec![body]);
    }

    #[test]
    fn round_trip_flag_bytes() {
        // 0x7E in the payload must be transparent without escaping.
        let body = vec![0x7E; 16];
        let wire = bitstuff_frame(&body);
        assert_eq!(bitunstuff_stream(&wire), vec![body]);
    }

    #[test]
    fn back_to_back_frames() {
        let mut wire = bitstuff_frame(b"one");
        wire.extend(bitstuff_frame(b"two!"));
        assert_eq!(
            bitunstuff_stream(&wire),
            vec![b"one".to_vec(), b"two!".to_vec()]
        );
    }

    #[test]
    fn random_round_trips() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let body: Vec<u8> = (0..rng.gen_range(1..200)).map(|_| rng.gen()).collect();
            let wire = bitstuff_frame(&body);
            assert_eq!(bitunstuff_stream(&wire), vec![body]);
        }
    }

    #[test]
    fn overhead_is_fractional_vs_octet_stuffing() {
        // The paper's worst case for octet stuffing (all flags) doubles
        // the frame; bit stuffing grows the same payload by ~1 bit per 7.
        let body = vec![0x7E; 1000];
        let octet_overhead_bits = (stuff(&body, Accm::SONET).len() - body.len()) * 8;
        let bit_overhead = bitstuff_overhead_bits(&body);
        assert!(bit_overhead * 4 < octet_overhead_bits);
        // But bit stuffing needs bit-granular shifters at 32 bits/clock —
        // the paper's byte-oriented datapath trades overhead for a
        // byte-aligned (cheaper) sorter.
    }

    #[test]
    fn worst_case_expansion_ratio() {
        let body = vec![0xFFu8; 700];
        let inserted = bitstuff_overhead_bits(&body);
        // One zero per five ones: 5600 bits -> 1120 insertions.
        assert_eq!(inserted, 1120);
    }
}
