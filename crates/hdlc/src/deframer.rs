//! Incremental frame decoder: wire bytes → delineation → destuff → FCS
//! check.  The behavioural mirror of the P⁵ receiver pipeline
//! (Escape Detect → CRC → Control).

use crate::{FcsMode, ESCAPE, ESCAPE_XOR, FLAG};
use p5_crc::{CrcEngine, Slice8Engine, FCS16, FCS32};

/// Why a received frame was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// FCS residue did not match the magic value.
    FcsMismatch,
    /// Frame ended with `0x7D 0x7E` (transmitter abort).
    Abort,
    /// Fewer octets between flags than the FCS alone requires.
    Runt,
    /// Frame exceeded the configured maximum receive unit.
    Giant,
}

/// One decoder output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeframeEvent {
    /// A good frame body (FCS verified and stripped).
    Frame(Vec<u8>),
    /// A discarded frame.
    Discard(FrameError),
}

/// Receiver configuration (OAM registers in hardware).
#[derive(Debug, Clone, Copy)]
pub struct DeframerConfig {
    pub fcs: FcsMode,
    /// Maximum frame body length (after destuffing, excluding FCS);
    /// frames longer than this are discarded as giants.  The PPP default
    /// MRU is 1500, plus 4 octets of address/control/protocol header.
    pub max_body: usize,
}

impl DeframerConfig {
    /// Worst-case wire bytes from a corruption event to re-delineation.
    ///
    /// After arbitrary corruption the receiver holds at most one
    /// maximum-length partial frame (body + FCS, each octet possibly
    /// escaped, so ×2) and resynchronises at the next uncorrupted flag,
    /// which the transmitter must emit no later than the end of the
    /// *following* maximum-length frame — hence two stuffed frame images
    /// plus the closing flag and a possible dangling escape.  The chaos
    /// harness (`p5-fault`, `fault_report`) holds delineation recovery to
    /// this bound.
    pub fn resync_bound_bytes(&self) -> usize {
        2 * (2 * (self.max_body + self.fcs.len()) + 1) + 1
    }
}

impl Default for DeframerConfig {
    fn default() -> Self {
        Self {
            fcs: FcsMode::Fcs32,
            max_body: 1500 + 4,
        }
    }
}

/// Receive-side statistics, mirroring the P⁵ OAM counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RxStats {
    pub frames_ok: u64,
    pub fcs_errors: u64,
    pub aborts: u64,
    pub runts: u64,
    pub giants: u64,
    pub bytes_ok: u64,
}

impl p5_stream::Observable for RxStats {
    fn snapshot(&self) -> p5_stream::Snapshot {
        p5_stream::Snapshot::new("hdlc-rx")
            .counter("frames_ok", self.frames_ok)
            .counter("fcs_errors", self.fcs_errors)
            .counter("aborts", self.aborts)
            .counter("runts", self.runts)
            .counter("giants", self.giants)
            .counter("bytes_ok", self.bytes_ok)
    }
}

impl RxStats {
    pub fn record(&mut self, ev: &DeframeEvent) {
        match ev {
            DeframeEvent::Frame(b) => {
                self.frames_ok += 1;
                self.bytes_ok += b.len() as u64;
            }
            DeframeEvent::Discard(FrameError::FcsMismatch) => self.fcs_errors += 1,
            DeframeEvent::Discard(FrameError::Abort) => self.aborts += 1,
            DeframeEvent::Discard(FrameError::Runt) => self.runts += 1,
            DeframeEvent::Discard(FrameError::Giant) => self.giants += 1,
        }
    }
}

/// Streaming HDLC decoder.  Push wire bytes in any chunking; frames fall
/// out as events.
#[derive(Debug, Clone)]
pub struct Deframer {
    config: DeframerConfig,
    /// Destuffed body accumulated so far (including FCS octets).
    body: Vec<u8>,
    /// Last octet was an unconsumed escape.
    escape_pending: bool,
    /// Body grew past max; discard at the closing flag.
    overrun: bool,
    /// Running CRC over the destuffed body (incremental, as hardware
    /// does) — slicing-by-8, so the bulk `accept_run` path checks eight
    /// octets per iteration.
    crc: Option<Slice8Engine>,
    stats: RxStats,
}

impl Deframer {
    pub fn new(config: DeframerConfig) -> Self {
        let crc = match config.fcs {
            FcsMode::None => None,
            FcsMode::Fcs16 => Some(Slice8Engine::new(FCS16)),
            FcsMode::Fcs32 => Some(Slice8Engine::new(FCS32)),
        };
        Self {
            config,
            body: Vec::new(),
            escape_pending: false,
            overrun: false,
            crc,
            stats: RxStats::default(),
        }
    }

    pub fn config(&self) -> &DeframerConfig {
        &self.config
    }

    pub fn stats(&self) -> &RxStats {
        &self.stats
    }

    /// Push a single wire octet; at most one event can result.
    pub fn push_byte(&mut self, byte: u8) -> Option<DeframeEvent> {
        if byte == FLAG {
            let ev = self.close_frame();
            if let Some(ref e) = ev {
                self.stats.record(e);
            }
            return ev;
        }
        if self.escape_pending {
            self.escape_pending = false;
            self.accept(byte ^ ESCAPE_XOR);
        } else if byte == ESCAPE {
            self.escape_pending = true;
        } else {
            self.accept(byte);
        }
        None
    }

    /// Push a slice of wire bytes, collecting all resulting events.
    ///
    /// Escape- and flag-free runs are located eight octets at a time
    /// with the [`crate::scan`] word detector and accepted in bulk
    /// (one CRC update, one `extend_from_slice`); only the special
    /// octets go through the per-byte state machine.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Vec<DeframeEvent> {
        let mut events = Vec::new();
        let mut rest = bytes;
        while !rest.is_empty() {
            if !self.escape_pending {
                let clean = crate::scan::clean_prefix_len(rest);
                if clean > 0 {
                    self.accept_run(&rest[..clean]);
                    rest = &rest[clean..];
                }
            }
            let Some((&b, tail)) = rest.split_first() else {
                break;
            };
            if let Some(ev) = self.push_byte(b) {
                events.push(ev);
            }
            rest = tail;
        }
        events
    }

    #[inline]
    fn accept(&mut self, byte: u8) {
        if self.body.len() >= self.config.max_body + self.config.fcs.len() {
            self.overrun = true;
            return;
        }
        if let Some(crc) = &mut self.crc {
            crc.update(&[byte]);
        }
        self.body.push(byte);
    }

    /// Bulk [`Self::accept`]: identical semantics (octets past the
    /// giant cap are dropped and excluded from the CRC), one CRC
    /// update and one copy for the whole run.
    fn accept_run(&mut self, run: &[u8]) {
        let cap = self.config.max_body + self.config.fcs.len();
        let free = cap.saturating_sub(self.body.len());
        let take = free.min(run.len());
        if take < run.len() {
            self.overrun = true;
        }
        let taken = &run[..take];
        if let Some(crc) = &mut self.crc {
            crc.update(taken);
        }
        self.body.extend_from_slice(taken);
    }

    /// A flag arrived: close out whatever is buffered.
    fn close_frame(&mut self) -> Option<DeframeEvent> {
        let escape_pending = std::mem::take(&mut self.escape_pending);
        let overrun = std::mem::take(&mut self.overrun);
        let body = std::mem::take(&mut self.body);
        let residue_ok = match &mut self.crc {
            Some(crc) => {
                let ok = crc.residue() == crc.params().good_residue;
                crc.reset();
                ok
            }
            None => true,
        };

        if escape_pending {
            return Some(DeframeEvent::Discard(FrameError::Abort));
        }
        if body.is_empty() {
            // Back-to-back flags: inter-frame fill, silently ignored.
            return None;
        }
        if overrun {
            return Some(DeframeEvent::Discard(FrameError::Giant));
        }
        let fcs_len = self.config.fcs.len();
        if body.len() < fcs_len.max(1) {
            return Some(DeframeEvent::Discard(FrameError::Runt));
        }
        if !residue_ok {
            return Some(DeframeEvent::Discard(FrameError::FcsMismatch));
        }
        let mut body = body;
        body.truncate(body.len() - fcs_len);
        Some(DeframeEvent::Frame(body))
    }
}

impl Default for Deframer {
    fn default() -> Self {
        Self::new(DeframerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framer::{encode_frame, FramerConfig};

    fn round_trip(body: &[u8]) -> Vec<DeframeEvent> {
        let wire = encode_frame(body, FramerConfig::default());
        Deframer::default().push_bytes(&wire)
    }

    #[test]
    fn simple_round_trip() {
        let events = round_trip(b"\xff\x03\x00\x21hello ip");
        assert_eq!(
            events,
            vec![DeframeEvent::Frame(b"\xff\x03\x00\x21hello ip".to_vec())]
        );
    }

    #[test]
    fn pathological_flag_payload_round_trips() {
        let body = vec![FLAG; 100];
        let events = round_trip(&body);
        assert_eq!(events, vec![DeframeEvent::Frame(body)]);
    }

    #[test]
    fn idle_flags_are_silent() {
        let mut d = Deframer::default();
        assert!(d.push_bytes(&[FLAG; 64]).is_empty());
        assert_eq!(d.stats().frames_ok, 0);
    }

    #[test]
    fn corrupted_wire_byte_is_fcs_error() {
        let mut wire = encode_frame(b"payload bytes here", FramerConfig::default());
        // Flip a non-flag, non-escape payload bit.
        wire[3] ^= 0x01;
        let events = Deframer::default().push_bytes(&wire);
        assert_eq!(events, vec![DeframeEvent::Discard(FrameError::FcsMismatch)]);
    }

    #[test]
    fn escape_then_flag_aborts() {
        let mut d = Deframer::default();
        let events = d.push_bytes(&[FLAG, 0x41, 0x42, ESCAPE, FLAG]);
        assert_eq!(events, vec![DeframeEvent::Discard(FrameError::Abort)]);
        assert_eq!(d.stats().aborts, 1);
    }

    #[test]
    fn runt_frames_are_discarded() {
        let mut d = Deframer::default();
        // Two octets between flags can't even hold an FCS-32.
        let events = d.push_bytes(&[FLAG, 0x01, 0x02, FLAG]);
        assert_eq!(events, vec![DeframeEvent::Discard(FrameError::Runt)]);
    }

    #[test]
    fn giant_frames_are_discarded_and_bounded() {
        let config = DeframerConfig {
            max_body: 64,
            ..Default::default()
        };
        let body = vec![0u8; 1000];
        let wire = encode_frame(&body, FramerConfig::default());
        let mut d = Deframer::new(config);
        let events = d.push_bytes(&wire);
        assert_eq!(events, vec![DeframeEvent::Discard(FrameError::Giant)]);
        // Memory stays bounded no matter how long the wire run is.
        assert!(d.body.capacity() <= 2 * (config.max_body + 8));
    }

    #[test]
    fn stream_resynchronises_after_abort() {
        let mut d = Deframer::default();
        let mut wire = vec![FLAG, 0x11, ESCAPE, FLAG]; // aborted frame
        wire.extend(encode_frame(b"good frame", FramerConfig::default()));
        let events = d.push_bytes(&wire);
        assert_eq!(
            events,
            vec![
                DeframeEvent::Discard(FrameError::Abort),
                DeframeEvent::Frame(b"good frame".to_vec())
            ]
        );
        assert_eq!(d.stats().frames_ok, 1);
        assert_eq!(d.stats().aborts, 1);
    }

    #[test]
    fn arbitrary_chunking_is_equivalent() {
        let mut wire = Vec::new();
        let mut f = crate::framer::Framer::new(FramerConfig::default());
        for i in 0..10u8 {
            f.encode_into(&vec![i; 10 + i as usize], &mut wire);
        }
        let all_at_once = Deframer::default().push_bytes(&wire);
        let mut one_by_one = Vec::new();
        let mut d = Deframer::default();
        for &b in &wire {
            if let Some(e) = d.push_byte(b) {
                one_by_one.push(e);
            }
        }
        assert_eq!(all_at_once, one_by_one);
        assert_eq!(all_at_once.len(), 10);
    }

    #[test]
    fn fcs16_mode_round_trips() {
        let cfg = FramerConfig {
            fcs: FcsMode::Fcs16,
            ..Default::default()
        };
        let wire = encode_frame(b"sixteen bit fcs", cfg);
        let mut d = Deframer::new(DeframerConfig {
            fcs: FcsMode::Fcs16,
            ..Default::default()
        });
        assert_eq!(
            d.push_bytes(&wire),
            vec![DeframeEvent::Frame(b"sixteen bit fcs".to_vec())]
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Deframer::default();
        let mut wire = Vec::new();
        let mut f = crate::framer::Framer::new(FramerConfig::default());
        f.encode_into(b"frame one", &mut wire);
        f.encode_into(b"frame two!", &mut wire);
        d.push_bytes(&wire);
        assert_eq!(d.stats().frames_ok, 2);
        assert_eq!(d.stats().bytes_ok, 9 + 10);
    }

    #[test]
    fn resync_bound_covers_a_mid_frame_corruption() {
        // Corrupt a byte in the middle of one max-length frame, then keep
        // sending clean frames: a correct frame must be delivered again
        // within `resync_bound_bytes()` wire bytes of the corruption.
        let cfg = DeframerConfig {
            max_body: 64,
            ..Default::default()
        };
        let bound = cfg.resync_bound_bytes();
        assert_eq!(bound, 2 * (2 * (64 + 4) + 1) + 1);
        let mut f = crate::framer::Framer::new(FramerConfig::default());
        let mut wire = Vec::new();
        for i in 0..6u8 {
            f.encode_into(&[i ^ 0x7E; 64], &mut wire);
        }
        let hit = wire.len() / 3; // inside frame 2
        wire[hit] ^= 0x55;
        let mut d = Deframer::new(cfg);
        let mut resynced_at = None;
        for (pos, &b) in wire.iter().enumerate() {
            if let Some(DeframeEvent::Frame(_)) = d.push_byte(b) {
                if pos > hit {
                    resynced_at.get_or_insert(pos);
                }
            }
        }
        let pos = resynced_at.expect("delineation recovered");
        assert!(
            pos - hit <= bound,
            "resync took {} wire bytes, bound is {bound}",
            pos - hit
        );
    }
}
