//! Octet stuffing and destuffing — the core transformation the paper's
//! Escape Generate and Escape Detect units perform in hardware.

use crate::{ESCAPE, ESCAPE_XOR, FLAG};

/// Async-Control-Character-Map (RFC 1662 §7.1): a bit per octet 0x00–0x1F
/// that must additionally be escaped on async links.  On
/// PPP-over-SONET/SDH the map is effectively zero (octet-synchronous link);
/// it is kept programmable because the OAM exposes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Accm(pub u32);

impl Accm {
    /// The all-zero map used on octet-synchronous (SONET/SDH) links.
    pub const SONET: Accm = Accm(0);
    /// The RFC 1662 default for async links: escape all of 0x00–0x1F.
    pub const ASYNC_DEFAULT: Accm = Accm(0xFFFF_FFFF);

    /// Must `byte` be escaped before transmission under this map?
    #[inline]
    pub fn must_escape(&self, byte: u8) -> bool {
        byte == FLAG || byte == ESCAPE || (byte < 0x20 && self.0 & (1 << byte) != 0)
    }
}

/// Stuff `body` into `out` (appending).  Returns the number of escape
/// octets inserted.
///
/// On the octet-synchronous SONET map ([`Accm::SONET`]) only `0x7E`
/// and `0x7D` need escaping, so the body is scanned a `u64` word at a
/// time ([`crate::scan`]) and escape-free runs are appended in bulk; a
/// non-zero ACCM takes the exact per-byte path.
pub fn stuff_into(body: &[u8], accm: Accm, out: &mut Vec<u8>) -> usize {
    if accm != Accm::SONET {
        return stuff_into_bytewise(body, accm, out);
    }
    out.reserve(body.len());
    let mut escapes = 0;
    let mut rest = body;
    loop {
        let clean = crate::scan::clean_prefix_len(rest);
        out.extend_from_slice(&rest[..clean]);
        rest = &rest[clean..];
        let Some((&b, tail)) = rest.split_first() else {
            return escapes;
        };
        out.push(ESCAPE);
        out.push(b ^ ESCAPE_XOR);
        escapes += 1;
        rest = tail;
    }
}

fn stuff_into_bytewise(body: &[u8], accm: Accm, out: &mut Vec<u8>) -> usize {
    let mut escapes = 0;
    for &b in body {
        if accm.must_escape(b) {
            out.push(ESCAPE);
            out.push(b ^ ESCAPE_XOR);
            escapes += 1;
        } else {
            out.push(b);
        }
    }
    escapes
}

/// Stuff `body` into a fresh vector.
pub fn stuff(body: &[u8], accm: Accm) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + body.len() / 8 + 4);
    stuff_into(body, accm, &mut out);
    out
}

/// Result of destuffing one inter-flag region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DestuffOutcome {
    /// Clean destuff.
    Ok(Vec<u8>),
    /// The region ended with a dangling escape octet (the closing flag
    /// followed `0x7D`) — an abort per RFC 1662.
    Aborted,
    /// An escaped octet decoded to a value that should never be escaped —
    /// accepted (the XOR is still applied) but flagged, since a conforming
    /// transmitter never produces it.  Carries the decoded bytes.
    Irregular(Vec<u8>),
}

/// Destuff one region of wire bytes that contains no flag octets.
///
/// Escape-free runs are located with the word scanner and copied in
/// bulk; only the escape sequences themselves are decoded bytewise.
pub fn destuff(wire: &[u8]) -> DestuffOutcome {
    let mut out = Vec::with_capacity(wire.len());
    let mut irregular = false;
    let mut rest = wire;
    loop {
        let clean = crate::scan::clean_prefix_len(rest);
        out.extend_from_slice(&rest[..clean]);
        rest = &rest[clean..];
        let Some((&b, tail)) = rest.split_first() else {
            break;
        };
        debug_assert_ne!(b, FLAG, "destuff input must be flag-free");
        if b == ESCAPE {
            let Some((&esc, tail)) = tail.split_first() else {
                return DestuffOutcome::Aborted;
            };
            let decoded = esc ^ ESCAPE_XOR;
            // A conforming peer only escapes octets that need it.
            if !(decoded == FLAG || decoded == ESCAPE || decoded < 0x20) {
                irregular = true;
            }
            out.push(decoded);
            rest = tail;
        } else {
            out.push(b);
            rest = tail;
        }
    }
    if irregular {
        DestuffOutcome::Irregular(out)
    } else {
        DestuffOutcome::Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // Paper §2: 31 33 7E 96 → 31 33 7D 5E 96.
        let body = [0x31, 0x33, 0x7E, 0x96];
        assert_eq!(
            stuff(&body, Accm::SONET),
            vec![0x31, 0x33, 0x7D, 0x5E, 0x96]
        );
    }

    #[test]
    fn escape_octet_itself_is_stuffed() {
        assert_eq!(stuff(&[0x7D], Accm::SONET), vec![0x7D, 0x5D]);
    }

    #[test]
    fn accm_controls_low_octets() {
        // 0x03 is transparent on SONET links but escaped under the async
        // default map.
        assert_eq!(stuff(&[0x03], Accm::SONET), vec![0x03]);
        assert_eq!(stuff(&[0x03], Accm::ASYNC_DEFAULT), vec![0x7D, 0x23]);
        // Byte 0x1F is bit 31 of the map.
        assert_eq!(stuff(&[0x1F], Accm(1 << 0x1F)), vec![0x7D, 0x3F]);
        assert_eq!(stuff(&[0x1F], Accm(0)), vec![0x1F]);
    }

    #[test]
    fn destuff_round_trip() {
        let body: Vec<u8> = (0..=255u8).collect();
        let wire = stuff(&body, Accm::SONET);
        assert_eq!(destuff(&wire), DestuffOutcome::Ok(body));
    }

    #[test]
    fn all_flags_body_doubles_in_size() {
        // The paper's worst case: every lane holds a flag character.
        let body = [FLAG; 16];
        let wire = stuff(&body, Accm::SONET);
        assert_eq!(wire.len(), 32);
        assert_eq!(destuff(&wire), DestuffOutcome::Ok(body.to_vec()));
    }

    #[test]
    fn dangling_escape_is_abort() {
        assert_eq!(destuff(&[0x41, ESCAPE]), DestuffOutcome::Aborted);
    }

    #[test]
    fn irregular_escape_is_flagged_but_decoded() {
        // 0x7D 0x61 decodes to 0x41, which never needs escaping.
        match destuff(&[ESCAPE, 0x41 ^ ESCAPE_XOR]) {
            DestuffOutcome::Irregular(v) => assert_eq!(v, vec![0x41]),
            other => panic!("expected Irregular, got {other:?}"),
        }
    }

    #[test]
    fn stuff_reports_escape_count() {
        let mut out = Vec::new();
        let n = stuff_into(&[0x7E, 0x00, 0x7D, 0x7E], Accm::SONET, &mut out);
        assert_eq!(n, 3);
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn empty_body() {
        assert!(stuff(&[], Accm::SONET).is_empty());
        assert_eq!(destuff(&[]), DestuffOutcome::Ok(vec![]));
    }
}
