//! Frame encoder: body → FCS append → stuff → flag-delimited wire bytes.
//! The behavioural mirror of the P⁵ transmitter pipeline
//! (Control → CRC → Escape Generate).

use crate::stuff::{stuff_into, Accm};
use crate::{FcsMode, FLAG};
use p5_crc::{fcs16_wire_bytes, fcs32_wire_bytes, CrcEngine, Slice8Engine, FCS16, FCS32};

/// Transmitter configuration (everything here is a register in the
/// Protocol OAM of the hardware design).
#[derive(Debug, Clone, Copy)]
pub struct FramerConfig {
    pub fcs: FcsMode,
    pub accm: Accm,
    /// Whether consecutive frames share a single flag (RFC 1662 permits
    /// both; sharing is what a saturated hardware framer does).
    pub share_flag: bool,
}

impl Default for FramerConfig {
    fn default() -> Self {
        Self {
            fcs: FcsMode::Fcs32,
            accm: Accm::SONET,
            share_flag: true,
        }
    }
}

/// Stateful frame encoder producing a contiguous wire stream.
#[derive(Debug, Clone)]
pub struct Framer {
    config: FramerConfig,
    /// Persistent slicing-by-8 FCS engine — built once with the framer,
    /// not a fresh lookup table per frame like the one-shot helpers.
    engine: Option<Slice8Engine>,
    /// True once at least one frame has been emitted (controls flag
    /// sharing).
    mid_stream: bool,
    frames_sent: u64,
    body_bytes_sent: u64,
    wire_bytes_sent: u64,
}

impl Default for Framer {
    fn default() -> Self {
        Self::new(FramerConfig::default())
    }
}

impl Framer {
    pub fn new(config: FramerConfig) -> Self {
        let engine = match config.fcs {
            FcsMode::None => None,
            FcsMode::Fcs16 => Some(Slice8Engine::new(FCS16)),
            FcsMode::Fcs32 => Some(Slice8Engine::new(FCS32)),
        };
        Self {
            config,
            engine,
            mid_stream: false,
            frames_sent: 0,
            body_bytes_sent: 0,
            wire_bytes_sent: 0,
        }
    }

    pub fn config(&self) -> &FramerConfig {
        &self.config
    }

    /// Encode one frame body (already containing PPP address/control/
    /// protocol header) and append its wire image to `out`.
    pub fn encode_into(&mut self, body: &[u8], out: &mut Vec<u8>) {
        if !(self.mid_stream && self.config.share_flag) {
            out.push(FLAG);
        }
        stuff_into(body, self.config.accm, out);
        if let Some(e) = &mut self.engine {
            e.reset();
            e.update(body);
            match self.config.fcs {
                FcsMode::Fcs16 => {
                    stuff_into(&fcs16_wire_bytes(e.value() as u16), self.config.accm, out);
                }
                _ => {
                    stuff_into(&fcs32_wire_bytes(e.value()), self.config.accm, out);
                }
            }
        }
        out.push(FLAG);
        self.mid_stream = true;
        self.frames_sent += 1;
        self.body_bytes_sent += body.len() as u64;
        self.wire_bytes_sent = out.len() as u64;
    }

    /// Encode one frame into a fresh vector (always opens with its own
    /// flag).
    pub fn encode(&mut self, body: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(body.len() + 16);
        self.mid_stream = false;
        self.encode_into(body, &mut out);
        out
    }

    /// Idle fill: hardware transmits flags between frames.
    pub fn idle_fill(&self, n: usize, out: &mut Vec<u8>) {
        out.extend(std::iter::repeat_n(FLAG, n));
    }

    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }
}

/// One-shot encode of a single frame with a given config.
pub fn encode_frame(body: &[u8], config: FramerConfig) -> Vec<u8> {
    Framer::new(config).encode(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ESCAPE;

    #[test]
    fn frame_is_flag_delimited() {
        let wire = encode_frame(b"abc", FramerConfig::default());
        assert_eq!(*wire.first().unwrap(), FLAG);
        assert_eq!(*wire.last().unwrap(), FLAG);
        // body(3) + fcs(4) + 2 flags, nothing needed escaping
        assert_eq!(wire.len(), 3 + 4 + 2);
    }

    #[test]
    fn interior_flags_are_escaped() {
        let wire = encode_frame(&[FLAG, FLAG], FramerConfig::default());
        // No unescaped flag octets between the delimiters.
        assert!(!wire[1..wire.len() - 1].contains(&FLAG));
    }

    #[test]
    fn fcs_bytes_are_stuffed_too() {
        // Hunt for a body whose FCS-32 contains 0x7E or 0x7D, and confirm
        // it is escaped on the wire.
        let mut found = false;
        for seed in 0u32..50_000 {
            let body = seed.to_le_bytes();
            let fcs = p5_crc::fcs32(&body);
            let fb = p5_crc::fcs32_wire_bytes(fcs);
            if fb.contains(&FLAG) || fb.contains(&ESCAPE) {
                let wire = encode_frame(&body, FramerConfig::default());
                assert!(!wire[1..wire.len() - 1].contains(&FLAG));
                found = true;
                break;
            }
        }
        assert!(found, "no body with stuffable FCS found in search range");
    }

    #[test]
    fn shared_flag_between_back_to_back_frames() {
        let mut f = Framer::new(FramerConfig::default());
        let mut out = Vec::new();
        f.encode_into(b"one", &mut out);
        let after_first = out.len();
        f.encode_into(b"two", &mut out);
        // Second frame reuses the first frame's closing flag.
        assert_eq!(out[after_first - 1], FLAG);
        assert_ne!(out[after_first], FLAG);
        assert_eq!(f.frames_sent(), 2);
    }

    #[test]
    fn unshared_flags_doubles_delimiters() {
        let mut f = Framer::new(FramerConfig {
            share_flag: false,
            ..Default::default()
        });
        let mut out = Vec::new();
        f.encode_into(b"one", &mut out);
        f.encode_into(b"two", &mut out);
        let flags = out.iter().filter(|&&b| b == FLAG).count();
        assert_eq!(flags, 4);
    }

    #[test]
    fn fcs_none_mode_appends_nothing() {
        let wire = encode_frame(
            b"xyz",
            FramerConfig {
                fcs: FcsMode::None,
                ..Default::default()
            },
        );
        assert_eq!(wire.len(), 3 + 2);
    }
}
