//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small PRNG surface its tests and channel models actually
//! use: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is SplitMix64 — statistically fine for test-vector
//! generation and bit-error channels, deterministic across platforms.
//! It is **not** the same stream as upstream `rand`'s StdRng, and it is
//! not cryptographically secure.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator (the `Standard`
/// distribution of upstream rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges a value can be drawn from (`gen_range` argument).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods, blanket-implemented for every core
/// generator (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::sample(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit PRNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        for _ in 0..1000 {
            let v = a.gen_range(3u8..9);
            assert!((3..9).contains(&v));
            let w = a.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..64).any(|_| r.gen_bool(0.0)));
        assert!((0..64).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn byte_arrays_fill() {
        let mut r = StdRng::seed_from_u64(2);
        let a: [u8; 4] = r.gen();
        let b: [u8; 4] = r.gen();
        assert_ne!(a, b, "distinct draws (overwhelmingly likely)");
    }
}
