//! Offline stand-in for `crossbeam`: the `channel` module subset the
//! threaded pipeline tests use (`bounded`, `unbounded`, cloneable
//! senders, blocking/non-blocking receive, iteration until
//! disconnect), implemented over `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Cloneable sending half of a channel.
    pub struct Sender<T>(Flavor<T>);

    enum Flavor<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Flavor::Bounded(s) => Flavor::Bounded(s.clone()),
                Flavor::Unbounded(s) => Flavor::Unbounded(s.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Blocks while a bounded channel is full; errors once every
        /// receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Bounded(s) => s.send(value),
                Flavor::Unbounded(s) => s.send(value),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator; ends when all senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Channel with capacity `cap`; sends block while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_round_trip_and_disconnect() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, [1, 2]);
    }

    #[test]
    fn try_recv_on_empty() {
        let (tx, rx) = channel::bounded::<u8>(1);
        assert!(rx.try_recv().is_err());
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 9);
    }
}
