//! Offline stand-in for `proptest`, implementing the subset of its API
//! the workspace property tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `Just` / ranges / tuples /
//! [`collection::vec`] / weighted [`prop_oneof!`] unions, `any::<T>()`
//! for the primitive types plus [`sample::Index`], per-test
//! [`test_runner::ProptestConfig`] case counts, and the `prop_assert*`
//! macros.
//!
//! Differences from upstream, by design:
//! * sampling is **deterministic** (seeded from the test name), so runs
//!   are reproducible without a regression file;
//! * there is **no shrinking** — a failing case panics with the
//!   generated values' debug output instead;
//! * the default case count is 64 (upstream: 256) to keep the offline
//!   test suite quick.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// A source of values of type `Value`.  Upstream proptest separates
    /// strategies from value trees (for shrinking); this stand-in
    /// generates final values directly.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        entries: Vec<(u32, BoxedStrategy<V>)>,
        total: u32,
    }

    impl<V> Union<V> {
        pub fn new(entries: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = entries.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof: weights must sum to > 0");
            Self { entries, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.entries {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weight accounting");
        }
    }

    /// `prop_oneof!` helper: box one alternative with its weight.
    pub fn union_entry<S>(weight: u32, strat: S) -> (u32, BoxedStrategy<S::Value>)
    where
        S: Strategy + 'static,
    {
        (weight, Box::new(strat))
    }

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            crate::sample::Index::new(rng.gen())
        }
    }

    /// Uniform strategy over every value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    /// A position into a collection whose length is only known at use
    /// time: `index(len)` maps the draw uniformly into `0..len`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn new(raw: u64) -> Self {
            Self(raw)
        }

        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod test_runner {
    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic per-test seed (FNV-1a of the test name) so failures
    /// reproduce without a regression file.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

#[doc(hidden)]
pub use rand as __rng;

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run each `#[test] fn name(arg in strategy, ...)` body against
/// `config.cases` generated inputs.  No shrinking: the first failing
/// case panics via `prop_assert*`/`assert*` directly.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (config = $cfg:expr;
     $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = <$crate::__rng::rngs::StdRng as $crate::__rng::SeedableRng>::
                    seed_from_u64($crate::test_runner::seed_for(stringify!($name)));
                for __case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Weighted (`w => strategy`) or uniform choice between strategies that
/// share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_entry($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_entry(1u32, $strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_respects_zero_weight_paths() {
        let s = prop_oneof![1 => Just(1u8), 3 => Just(2u8)];
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let draws: Vec<u8> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn generated_vectors_respect_bounds(
            v in prop::collection::vec(any::<u8>(), 2..10),
            n in 1usize..5,
        ) {
            prop_assert!((2..10).contains(&v.len()));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn index_is_in_range(ix in any::<prop::sample::Index>(), len in 1usize..100) {
            prop_assert!(ix.index(len) < len);
        }

        #[test]
        fn tuples_and_inclusive_ranges(pair in (any::<bool>(), 1u8..=3)) {
            let (_, b) = pair;
            prop_assert!((1..=3).contains(&b));
        }
    }
}
