//! Offline stand-in for `parking_lot`: the `RwLock`/`Mutex` API surface
//! the workspace uses, backed by `std::sync`.  Like the real crate the
//! guards are obtained without a `Result` (a poisoned std lock is
//! recovered rather than propagated — panicking while holding the OAM
//! lock must not wedge every later reader).

use std::sync;
pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(&*m.lock(), "ab");
    }
}
