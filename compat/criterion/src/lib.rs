//! Offline stand-in for `criterion`: the group / `bench_function` /
//! `iter` API over a deliberately small timing loop.  No statistics,
//! plots or baselines — each benchmark runs a short calibrated burst
//! and prints mean wall-clock time (plus throughput when declared).
//! Under `cargo test` (which executes `harness = false` bench binaries)
//! the burst stays small so the suite remains fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared work per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark label: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        match (self.function.is_empty(), self.parameter.is_empty()) {
            (true, _) => self.parameter.clone(),
            (_, true) => self.function.clone(),
            _ => format!("{}/{}", self.function, self.parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId::from_parameter(s)
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId::from_parameter(s)
    }
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench("", &id.into(), None, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stand-in's burst is already
    /// calibrated, so the requested sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&self.name, &id.into(), self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench(
    group: &str,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // One calibration pass sizes the burst so a bench binary finishes in
    // well under a second even when invoked by `cargo test`.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let burst = (Duration::from_millis(20).as_nanos() / per_iter.as_nanos()).clamp(1, 1000) as u64;
    let mut b = Bencher {
        iters: burst,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / burst as f64;
    let label = if group.is_empty() {
        id.label()
    } else {
        format!("{group}/{}", id.label())
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:.1} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / mean)
        }
        _ => String::new(),
    };
    println!("bench {label:<48} {:>12.3} µs/iter{rate}", mean * 1e6);
}

/// Expands to a function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Expands to `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_the_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Bytes(8));
        let mut ran = 0u64;
        g.bench_function(BenchmarkId::new("f", "p"), |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran >= 2, "calibration + burst must both run");
    }
}
