//! Property tests on the stream layer: arbitrary `Stack` compositions
//! under arbitrary per-stage ready-deassertion never lose, duplicate or
//! reorder a frame; the golden-model framer/deframer stages preserve
//! stuff∘destuff = id through a throttled stack; and the device's
//! batched wire ingest is byte-for-byte equivalent to per-byte delivery.
//!
//! These are the stream-layer unit tests proper: they exercise custom
//! throttled topologies below `LinkBuilder`, so they use the raw
//! `stack!` escape hatch by design (DESIGN.md §14).

use p5::hdlc::{DeframerStage, FramerConfig, FramerStage};
use p5::prelude::*;
use proptest::prelude::*;

fn raw_pattern() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 1..16)
}

/// Ensure a stall pattern has at least one ready slot and odd length: a
/// `Stack` sweep draws the gate twice per stage (drain + offer), so an
/// even-length pattern can phase-lock one operation onto a permanently
/// false slot and wedge the stack.
fn odd_pattern(mut v: Vec<bool>) -> Vec<bool> {
    v.push(true);
    if v.len().is_multiple_of(2) {
        v.push(true);
    }
    v
}

/// Frame bodies biased towards flag/escape octets (the stuffing worst
/// case).
fn frames_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![
                2 => Just(0x7Eu8),
                2 => Just(0x7Du8),
                6 => any::<u8>(),
            ],
            1..80,
        ),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn throttled_pipe_stack_never_loses_dups_or_reorders(
        frames in frames_strategy(),
        p1 in raw_pattern(),
        p2 in raw_pattern(),
        p3 in raw_pattern(),
    ) {
        let (p1, p2, p3) = (odd_pattern(p1), odd_pattern(p2), odd_pattern(p3));
        let mut s = stack![
            Throttle::new(Pipe::with_max_per_call(3), p1),
            Throttle::new(Pipe::new(), p2),
            Throttle::new(Pipe::with_max_per_call(7), p3),
        ];
        for f in &frames {
            s.input().push_frame(f);
        }
        prop_assert!(s.run_until_idle(20_000), "stack wedged under stalls");
        let mut got = Vec::new();
        while let Some((f, meta)) = s.output().pop_frame() {
            prop_assert!(!meta.abort);
            got.push(f);
        }
        prop_assert_eq!(got, frames);
    }

    #[test]
    fn stall_attribution_accounts_for_every_offered_sweep(
        frames in frames_strategy(),
        p1 in raw_pattern(),
        p2 in raw_pattern(),
        p3 in raw_pattern(),
    ) {
        // Every sweep in which a boundary buffer had data on offer must
        // resolve to exactly one of accepted / rejected / blocked — the
        // attribution the stall table is built from.
        let (p1, p2, p3) = (odd_pattern(p1), odd_pattern(p2), odd_pattern(p3));
        let mut s = stack![
            Throttle::new(Pipe::with_max_per_call(2), p1),
            Throttle::new(Pipe::with_max_per_call(5), p2),
            Throttle::new(Pipe::new(), p3),
        ];
        for f in &frames {
            s.input().push_frame(f);
        }
        prop_assert!(s.run_until_idle(20_000), "stack wedged under stalls");
        s.finish();
        for (i, b) in s.boundary_stats().iter().enumerate() {
            prop_assert_eq!(
                b.offered,
                b.accepted + b.rejected + b.blocked,
                "attribution leak at boundary {}: offered {} != {} + {} + {}",
                i, b.offered, b.accepted, b.rejected, b.blocked
            );
        }
        // Totals must account for the payload actually moved.
        let total: usize = frames.iter().map(|f| f.len()).sum();
        let out = s.boundary_stats().last().unwrap();
        prop_assert_eq!(out.bytes_out, total as u64);
    }

    #[test]
    fn stuff_destuff_identity_through_throttled_golden_stack(
        frames in frames_strategy(),
        p1 in raw_pattern(),
        p2 in raw_pattern(),
    ) {
        let (p1, p2) = (odd_pattern(p1), odd_pattern(p2));
        let mut s = stack![
            Throttle::new(FramerStage::new(FramerConfig::default()), p1),
            Throttle::new(DeframerStage::new(DeframerConfig::default()), p2),
        ];
        for f in &frames {
            s.input().push_frame(f);
        }
        prop_assert!(s.run_until_idle(20_000), "golden stack wedged");
        let mut got = Vec::new();
        while let Some((f, _)) = s.output().pop_frame() {
            got.push(f);
        }
        prop_assert_eq!(got, frames);
    }

    #[test]
    fn batched_wire_ingest_equals_per_byte(frames in frames_strategy()) {
        // Encode once.
        let mut tx = P5::new(DatapathWidth::W32);
        for f in &frames {
            tx.submit(0x0021, f.clone()).unwrap();
        }
        tx.run_until_idle(1_000_000);
        let wire = tx.take_wire_out();

        // Deliver the whole wire image in one batched call...
        let mut rx_batched = P5::new(DatapathWidth::W32);
        rx_batched.put_wire_in(&wire);
        rx_batched.run_until_idle(1_000_000);

        // ...and byte by byte, interleaved with clocks.
        let mut rx_bytewise = P5::new(DatapathWidth::W32);
        for &b in &wire {
            rx_bytewise.put_wire_in(&[b]);
            rx_bytewise.clock();
        }
        rx_bytewise.run_until_idle(1_000_000);

        let batched: Vec<Vec<u8>> = rx_batched
            .take_received()
            .into_iter()
            .map(|f| f.payload)
            .collect();
        let bytewise: Vec<Vec<u8>> = rx_bytewise
            .take_received()
            .into_iter()
            .map(|f| f.payload)
            .collect();
        prop_assert_eq!(&batched, &bytewise);
        prop_assert_eq!(batched, frames);
    }
}
