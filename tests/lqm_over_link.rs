//! Link Quality Monitoring end to end: LQR monitors fed from the P⁵'s
//! OAM counters measure exactly the loss a noisy channel inflicts.

use p5_core::firmware::{Driver, DriverConfig};
use p5_core::{DatapathWidth, P5};
use p5_ppp::lqr::{LqrMonitor, LqrPacket};
use rand::{rngs::StdRng, Rng, SeedableRng};

#[test]
fn lqr_measures_exactly_the_channel_loss() {
    let mut tx = P5::new(DatapathWidth::W32);
    let mut rx = P5::new(DatapathWidth::W32);
    let mut drv_rx = Driver::new(rx.oam.clone());
    drv_rx.init(DriverConfig::default());

    let mut mon_a = LqrMonitor::new(0xA);
    let mut mon_b = LqrMonitor::new(0xB);
    let mut rng = StdRng::seed_from_u64(404);

    let exchange = |mon_a: &mut LqrMonitor, mon_b: &mut LqrMonitor| {
        let ra = mon_a.build_report();
        mon_b.receive_report(LqrPacket::parse(&ra.to_bytes()).unwrap());
        let rb = mon_b.build_report();
        mon_a.receive_report(LqrPacket::parse(&rb.to_bytes()).unwrap());
    };

    let mut prev_rx_frames = 0u32;
    let mut total_corrupted = 0u32;
    for interval in 0..4 {
        // Send 50 frames; corrupt a known subset on the wire.
        let mut corrupted = 0u32;
        for i in 0..50u32 {
            tx.submit(0x0021, vec![(interval * 50 + i) as u8; 60])
                .unwrap();
            tx.run_until_idle(100_000);
            let mut wire = tx.take_wire_out();
            if rng.gen_bool(0.2) {
                wire[10] ^= 0x40; // payload corruption -> FCS error
                corrupted += 1;
            }
            rx.put_wire_in(&wire);
            rx.run_until_idle(100_000);
        }
        total_corrupted += corrupted;
        rx.take_received();

        // Firmware feeds the monitors from the counters.
        mon_a.note_sent(50, 50 * 60);
        let stats = drv_rx.stats();
        let delivered = stats.rx_frames - prev_rx_frames;
        prev_rx_frames = stats.rx_frames;
        mon_b.note_received(delivered, delivered * 60, 0, stats.fcs_errors);
        exchange(&mut mon_a, &mut mon_b);

        if interval > 0 {
            let q = mon_a.outbound_quality().expect("measured");
            assert_eq!(q.sent, 50, "interval {interval}");
            assert_eq!(q.lost(), corrupted, "interval {interval}");
        }
    }
    // Global accounting agrees with the OAM.
    let stats = drv_rx.stats();
    assert_eq!(stats.fcs_errors, total_corrupted);
    assert_eq!(stats.rx_frames, 200 - total_corrupted);
}
