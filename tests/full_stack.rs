//! Full-stack integration: IP datagrams through the cycle-accurate P⁵,
//! over STM-16/STM-4 with overheads, scrambling and injected bit
//! errors, back up through the receiving P⁵ — the paper's deployment
//! scenario end to end, assembled by [`LinkBuilder`].

use p5::prelude::*;

/// Push `datagrams` through P⁵ → OC path → P⁵ as one [`Link`]; returns
/// (delivered payloads, receiver error total).
///
/// The builder clocks the transmitter in continuous (idle-fill) mode at
/// exactly the line rate — one SPE's worth of wire bytes per 125 µs
/// frame — as the real hardware is, so the SONET framer never has to
/// invent fill octets in the middle of an HDLC frame.
fn run_stack(
    width: DatapathWidth,
    level: StmLevel,
    fault: Option<FaultPlan>,
    datagrams: &[Vec<u8>],
) -> (Vec<Vec<u8>>, u64) {
    let mut builder = LinkBuilder::new().width(width).sonet(level);
    if let Some(plan) = fault {
        builder = builder.fault(plan);
    }
    let mut link = builder.build().expect("link assembles");
    for d in datagrams {
        link.send(0x0021, d);
    }
    link.run(5_000).expect("stack did not drain");
    let out = link.deliveries().into_iter().map(|(_, p)| p).collect();
    (out, link.rx_errors())
}

#[test]
fn clean_channel_delivers_everything_w32() {
    let datagrams: Vec<Vec<u8>> = (0..100u8)
        .map(|i| vec![i; 40 + 11 * i as usize % 1400])
        .collect();
    let (got, errors) = run_stack(DatapathWidth::W32, StmLevel::Stm16, None, &datagrams);
    assert_eq!(errors, 0);
    assert_eq!(got, datagrams);
}

#[test]
fn clean_channel_delivers_everything_w8_on_stm4() {
    let datagrams: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i ^ 0x7E; 60 + i as usize]).collect();
    let (got, errors) = run_stack(DatapathWidth::W8, StmLevel::Stm4, None, &datagrams);
    assert_eq!(errors, 0);
    assert_eq!(got, datagrams);
}

#[test]
fn adversarial_payloads_survive_the_stack() {
    // Payloads full of flags/escapes — the byte sorter's worst case —
    // plus SONET scrambling on top.
    let mut datagrams = Vec::new();
    for i in 0..30 {
        let d: Vec<u8> = (0..200)
            .map(|j| match (i + j) % 3 {
                0 => 0x7E,
                1 => 0x7D,
                _ => (i * 31 + j) as u8,
            })
            .collect();
        datagrams.push(d);
    }
    let (got, errors) = run_stack(DatapathWidth::W32, StmLevel::Stm16, None, &datagrams);
    assert_eq!(errors, 0);
    assert_eq!(got, datagrams);
}

#[test]
fn bit_errors_are_detected_never_delivered_corrupt() {
    let datagrams: Vec<Vec<u8>> = (0..200u16)
        .map(|i| {
            (0..100)
                .map(|j| (i.wrapping_mul(7).wrapping_add(j) & 0xFF) as u8)
                .collect()
        })
        .collect();
    let plan = FaultSpec::clean()
        .ber(2e-6)
        .compile(77)
        .expect("valid spec");
    let (got, errors) = run_stack(DatapathWidth::W32, StmLevel::Stm16, Some(plan), &datagrams);
    assert!(errors > 0, "at 2e-6 BER over ~20kB some frames must break");
    // Every delivered payload must be byte-identical to one that was
    // sent (in order): FCS-32 caught all corruption.
    let mut di = datagrams.iter();
    for g in &got {
        assert!(
            di.any(|d| d == g),
            "a delivered frame matches no sent datagram — silent corruption!"
        );
    }
    assert!(got.len() + errors as usize >= datagrams.len() - 4);
}

#[test]
fn oam_counters_match_the_behaviour() {
    // Device-level (no stack): the batched wire hand-off between two
    // bare P⁵s, checked against the OAM registers.
    let datagrams: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 64]).collect();
    let mut tx = P5::new(DatapathWidth::W32);
    let mut rx = P5::new(DatapathWidth::W32);
    for d in &datagrams {
        tx.submit(0x0021, d.clone()).unwrap();
    }
    tx.run_until_idle(1_000_000);
    rx.put_wire_in(&tx.take_wire_out());
    rx.run_until_idle(1_000_000);
    let bus = Oam::new(rx.oam.clone());
    assert_eq!(bus.read(regs::RX_FRAMES), 10);
    assert_eq!(bus.read(regs::FCS_ERRORS), 0);
    let tx_bus = Oam::new(tx.oam.clone());
    assert_eq!(tx_bus.read(regs::TX_FRAMES), 10);
}
