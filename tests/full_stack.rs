//! Full-stack integration: IP datagrams through the cycle-accurate P⁵,
//! over STM-16/STM-4 with overheads, scrambling and injected bit
//! errors, back up through the receiving P⁵ — the paper's deployment
//! scenario end to end.

use p5_core::oam::{regs, MmioBus, Oam};
use p5_core::{decap, encap, DatapathWidth, RxStage, TxStage, P5};
use p5_sonet::{BitErrorChannel, OcPath, OcPathStage, StmLevel};
use p5_stream::stack;

/// Push `datagrams` through P⁵ → OC path → P⁵ as one composed `Stack`;
/// returns (delivered payloads, receiver error total).
///
/// The transmitter runs in continuous (idle-fill) mode and is clocked
/// at exactly the line rate — one SPE's worth of wire bytes per 125 µs
/// frame (`TxStage` burst = cycles per frame, `OcPathStage` advances one
/// frame per sweep) — as the real hardware is.  This guarantees the
/// SONET framer never has to invent fill octets in the middle of an
/// HDLC frame.
fn run_stack(
    width: DatapathWidth,
    level: StmLevel,
    channel: BitErrorChannel,
    datagrams: &[Vec<u8>],
) -> (Vec<Vec<u8>>, u64) {
    let mut tx = P5::new(width);
    tx.tx.escape.idle_fill = true; // continuous line: flags when idle
    let rx = P5::new(width);
    let rx_oam = rx.oam.clone();
    // A few surplus cycles per frame keep the SPE queue primed (the
    // pipeline-fill cycles of the first frame would otherwise leave the
    // framer short mid-HDLC-frame).
    let cycles_per_frame = level.payload_per_frame().div_ceil(width.bytes()) as u64 + 8;
    let mut s = stack![
        TxStage::with_burst(tx, cycles_per_frame),
        OcPathStage::new(OcPath::new(level, channel)),
        RxStage::with_burst(rx, 2 * cycles_per_frame),
    ];
    for d in datagrams {
        encap(0x0021, d, s.input());
    }
    assert!(s.run_until_idle(5_000), "stack did not drain");
    // Flush: the OC path's `finish` drains the SPE backlog plus two
    // frames of flag fill; the interleaved sweeps carry it to the rx.
    s.finish();
    let mut out = Vec::new();
    let mut frame = Vec::new();
    while s.output().pop_frame_into(&mut frame).is_some() {
        let (_proto, payload) = decap(&frame).expect("rx frames carry a protocol");
        out.push(payload.to_vec());
    }
    let bus = Oam::new(rx_oam);
    let errors = u64::from(
        bus.read(regs::FCS_ERRORS)
            + bus.read(regs::ABORTS)
            + bus.read(regs::RUNTS)
            + bus.read(regs::GIANTS)
            + bus.read(regs::HEADER_ERRORS),
    );
    (out, errors)
}

#[test]
fn clean_channel_delivers_everything_w32() {
    let datagrams: Vec<Vec<u8>> = (0..100u8)
        .map(|i| vec![i; 40 + 11 * i as usize % 1400])
        .collect();
    let (got, errors) = run_stack(
        DatapathWidth::W32,
        StmLevel::Stm16,
        BitErrorChannel::clean(),
        &datagrams,
    );
    assert_eq!(errors, 0);
    assert_eq!(got, datagrams);
}

#[test]
fn clean_channel_delivers_everything_w8_on_stm4() {
    let datagrams: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i ^ 0x7E; 60 + i as usize]).collect();
    let (got, errors) = run_stack(
        DatapathWidth::W8,
        StmLevel::Stm4,
        BitErrorChannel::clean(),
        &datagrams,
    );
    assert_eq!(errors, 0);
    assert_eq!(got, datagrams);
}

#[test]
fn adversarial_payloads_survive_the_stack() {
    // Payloads full of flags/escapes — the byte sorter's worst case —
    // plus SONET scrambling on top.
    let mut datagrams = Vec::new();
    for i in 0..30 {
        let d: Vec<u8> = (0..200)
            .map(|j| match (i + j) % 3 {
                0 => 0x7E,
                1 => 0x7D,
                _ => (i * 31 + j) as u8,
            })
            .collect();
        datagrams.push(d);
    }
    let (got, errors) = run_stack(
        DatapathWidth::W32,
        StmLevel::Stm16,
        BitErrorChannel::clean(),
        &datagrams,
    );
    assert_eq!(errors, 0);
    assert_eq!(got, datagrams);
}

#[test]
fn bit_errors_are_detected_never_delivered_corrupt() {
    let datagrams: Vec<Vec<u8>> = (0..200u16)
        .map(|i| {
            (0..100)
                .map(|j| (i.wrapping_mul(7).wrapping_add(j) & 0xFF) as u8)
                .collect()
        })
        .collect();
    let (got, errors) = run_stack(
        DatapathWidth::W32,
        StmLevel::Stm16,
        BitErrorChannel::new(2e-6, 1, 77),
        &datagrams,
    );
    assert!(errors > 0, "at 2e-6 BER over ~20kB some frames must break");
    // Every delivered payload must be byte-identical to one that was
    // sent (in order): FCS-32 caught all corruption.
    let mut di = datagrams.iter();
    for g in &got {
        assert!(
            di.any(|d| d == g),
            "a delivered frame matches no sent datagram — silent corruption!"
        );
    }
    assert!(got.len() + errors as usize >= datagrams.len() - 4);
}

#[test]
fn oam_counters_match_the_behaviour() {
    use p5_core::oam::{regs, MmioBus, Oam};
    let datagrams: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 64]).collect();
    let mut tx = P5::new(DatapathWidth::W32);
    let mut rx = P5::new(DatapathWidth::W32);
    for d in &datagrams {
        tx.submit(0x0021, d.clone()).unwrap();
    }
    tx.run_until_idle(1_000_000);
    rx.put_wire_in(&tx.take_wire_out());
    rx.run_until_idle(1_000_000);
    let bus = Oam::new(rx.oam.clone());
    assert_eq!(bus.read(regs::RX_FRAMES), 10);
    assert_eq!(bus.read(regs::FCS_ERRORS), 0);
    let tx_bus = Oam::new(tx.oam.clone());
    assert_eq!(tx_bus.read(regs::TX_FRAMES), 10);
}
