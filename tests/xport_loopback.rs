//! Real-endpoint integration (DESIGN.md §18): two session drivers
//! bring up LCP → IPCP over an actual TCP loopback socket and exchange
//! an IMIX blend; scripted stalls and a mid-run disconnect over the
//! deterministic pipe never corrupt a delivery and renegotiate within
//! budget; and the transparent engine's wire is byte-identical to an
//! in-memory device run.

use std::time::{Duration, Instant};

use p5::prelude::*;
use p5::xport::PipeControl;
use proptest::prelude::*;

const IPV4: u16 = 0x0021;
const BRINGUP: Duration = Duration::from_secs(10);

fn profile(magic: u32, ip: [u8; 4]) -> NegotiationProfile {
    NegotiationProfile::new().magic(magic).ip(ip)
}

/// Offer with admission retry (the ingress queue is bounded), then
/// collect exactly `want` deliveries from `rx` before `deadline`.
fn pump(
    tx: &SessionDriver,
    rx: &SessionDriver,
    frames: &[Vec<u8>],
    deadline: Instant,
) -> Vec<(u16, Vec<u8>)> {
    let mut sent = 0;
    let mut got = Vec::new();
    while sent < frames.len() || got.len() < frames.len() {
        assert!(Instant::now() < deadline, "pump timed out");
        if sent < frames.len() && tx.offer(IPV4, &frames[sent]).is_admitted() {
            sent += 1;
        }
        got.extend(rx.take_deliveries());
        if sent == frames.len() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    got
}

/// The classic IMIX blend: mostly minimum-size frames, some mid-size,
/// a few full-size — each stamped with its index so corruption or
/// reordering is attributable.
fn imix(count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            let len = match i % 12 {
                0..=6 => 64,
                7..=10 => 576,
                _ => 1500,
            };
            let mut f = vec![0u8; len];
            f[0] = i as u8;
            f[1] = (i >> 8) as u8;
            for (j, b) in f.iter_mut().enumerate().skip(2) {
                *b = (i as u8).wrapping_mul(31).wrapping_add(j as u8);
            }
            f
        })
        .collect()
}

#[test]
fn tcp_loopback_runs_full_bringup_and_imix() {
    // Server side binds an ephemeral port and accepts from its driver
    // loop; client dials it — exactly the two-process shape, in two
    // threads.
    let server = TcpTransport::listen("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let a = LinkBuilder::new()
        .profile(profile(0xA5A5_0001, [192, 168, 7, 1]))
        .transport(server)
        .build_remote()
        .expect("server endpoint");
    let b = LinkBuilder::new()
        .profile(profile(0xA5A5_0002, [192, 168, 7, 2]))
        .transport(TcpTransport::connect(addr).expect("dial loopback"))
        .build_remote()
        .expect("client endpoint");

    assert!(a.await_network_up(BRINGUP), "server IPCP open");
    assert!(b.await_network_up(BRINGUP), "client IPCP open");

    // IMIX both ways, concurrently admitted, every byte verified.
    let forward = imix(48);
    let reverse = imix(24);
    let deadline = Instant::now() + Duration::from_secs(30);
    let got_fwd = pump(&a, &b, &forward, deadline);
    let got_rev = pump(&b, &a, &reverse, deadline);
    assert_eq!(
        got_fwd,
        forward
            .iter()
            .map(|f| (IPV4, f.clone()))
            .collect::<Vec<_>>(),
        "forward IMIX delivered in order, uncorrupted"
    );
    assert_eq!(
        got_rev,
        reverse
            .iter()
            .map(|f| (IPV4, f.clone()))
            .collect::<Vec<_>>(),
        "reverse IMIX delivered in order, uncorrupted"
    );

    // The wire actually carried it all, with real socket accounting.
    let engine = a.shutdown();
    let snap = engine.snapshot();
    assert!(snap.get("bytes_out").unwrap() > 48 * 64);
    assert!(snap.get("bytes_in").unwrap() > 0);
    assert_eq!(snap.get("io_errors"), Some(0));
    b.shutdown();
}

/// Drive random traffic through a paired pipe while a scripted stall
/// and one mid-run sever hit the transport.  Invariants: every
/// delivered frame is one the sender offered, byte-exact and in order
/// (PPP links never reorder); the sever is observed and renegotiated
/// within budget; traffic offered after re-open all arrives.
fn stall_sever_trial(payloads: Vec<Vec<u8>>, stall_ops: u64) {
    let (ta, tb) = PipeTransport::pair_with_capacity(2048);
    let ctl: PipeControl = ta.control();
    let a = LinkBuilder::new()
        .profile(profile(0x0DD5_EED5, [10, 1, 0, 1]))
        .transport(ta)
        .build_remote()
        .expect("end a");
    let b = LinkBuilder::new()
        .profile(profile(0x0E0E_0E0E, [10, 1, 0, 2]))
        .transport(tb)
        .build_remote()
        .expect("end b");
    assert!(a.await_network_up(BRINGUP) && b.await_network_up(BRINGUP));

    // Phase 1: random traffic with a stall burst in the middle.  A
    // stalled transport delays bytes but loses none, so everything
    // offered here must arrive.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mid = payloads.len() / 2;
    let mut sent = 0;
    let mut got: Vec<(u16, Vec<u8>)> = Vec::new();
    while sent < payloads.len() || got.len() < payloads.len() {
        assert!(Instant::now() < deadline, "phase 1 timed out");
        if sent == mid {
            ctl.stall(stall_ops);
        }
        if sent < payloads.len() && a.offer(IPV4, &payloads[sent]).is_admitted() {
            sent += 1;
        }
        got.extend(b.take_deliveries());
        if sent == payloads.len() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    for (i, (proto, frame)) in got.iter().enumerate() {
        assert_eq!(*proto, IPV4);
        assert_eq!(frame, &payloads[i], "frame {i} corrupted under stall");
    }

    // Phase 2: hard mid-run disconnect.  Both ends must notice, run
    // the RFC 1661 Down transition, and renegotiate to open.
    ctl.sever();
    let reopen = Instant::now() + BRINGUP;
    while !(a.is_network_up() && b.is_network_up()) {
        assert!(
            Instant::now() < reopen,
            "renegotiation exceeded the restart budget"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Phase 3: post-renegotiation traffic gets through again.  The
    // link may flap once more while late pre-sever duplicates drain
    // (RFC 1661 renegotiates on a Configure-Request in Opened), and an
    // outage may eat frames in flight — that's loss, which PPP
    // permits.  Corruption is not: retransmit undelivered frames until
    // every index arrives, and verify each arrival byte-exact.
    let after = imix(6);
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut delivered = vec![false; after.len()];
    let mut next_resend = Instant::now();
    while !delivered.iter().all(|d| *d) {
        assert!(
            Instant::now() < deadline,
            "post-renegotiation traffic never recovered"
        );
        if Instant::now() >= next_resend {
            for (i, f) in after.iter().enumerate() {
                if !delivered[i] {
                    let _ = a.offer(IPV4, f);
                }
            }
            next_resend = Instant::now() + Duration::from_millis(300);
        }
        for (proto, frame) in b.take_deliveries() {
            assert_eq!(proto, IPV4);
            let idx = frame[0] as usize | (frame[1] as usize) << 8;
            assert!(
                idx < after.len() && frame == after[idx],
                "corrupt post-renegotiation delivery"
            );
            delivered[idx] = true; // duplicates are ours (resends), fine
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    // A severed pipe can be re-established by whichever end notices
    // first — reopening the lanes before the peer ever observes the
    // closure — so the disconnect is only guaranteed to be counted
    // *somewhere*, not on a chosen end.
    let ea = a.shutdown();
    let eb = b.shutdown();
    let disconnects = ea.counters.disconnects + eb.counters.disconnects;
    assert!(disconnects >= 1, "sever was observed by neither end");
    let reconnects = ea.counters.reconnects + eb.counters.reconnects;
    assert!(reconnects >= 1, "pipe was never re-established");
}

proptest! {
    // Each case spins four OS threads and renegotiates a real severed
    // session — a handful of cases covers the space without minutes of
    // wall time.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn random_traffic_survives_stalls_and_disconnects(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..600),
            4..24,
        ),
        stall_ops in 1u64..400,
    ) {
        stall_sever_trial(payloads, stall_ops);
    }
}

#[test]
fn transparent_pipe_wire_matches_the_in_memory_device_byte_for_byte() {
    use p5::xport::LinkEngine;

    // Reference: a bare device fed the same frames in the same order.
    let frames = imix(16);
    let mut reference = P5::new(DatapathWidth::W32);
    let mut expected = Vec::new();
    for f in &frames {
        reference.submit(IPV4, f.clone()).expect("reference submit");
        reference.run_until_idle(2_000_000);
        while reference.has_wire_out() {
            let bytes = reference.take_wire_out();
            expected.extend_from_slice(&bytes);
            reference.recycle_wire_vec(bytes);
        }
    }

    // Subject: a transparent engine over a tapped pipe, serviced
    // single-threadedly (no driver thread — determinism is the point).
    let (mut ta, tb) = PipeTransport::pair();
    let tap = ta.tap_tx();
    let mut tx = LinkEngine::transparent(DatapathWidth::W32, Box::new(ta));
    let mut rx = LinkEngine::transparent(DatapathWidth::W32, Box::new(tb));
    let mut delivered = 0usize;
    let mut offered = 0usize;
    let mut spins = 0u32;
    while delivered < frames.len() {
        if offered < frames.len() && tx.offer(IPV4, &frames[offered]).is_admitted() {
            offered += 1;
        }
        tx.service();
        rx.service();
        delivered += rx.take_deliveries().len();
        spins += 1;
        assert!(spins < 1_000_000, "transparent exchange did not converge");
    }

    let wire = tap.lock().clone();
    assert_eq!(
        wire, expected,
        "transport-backed wire bytes differ from the in-memory device"
    );
}
