//! Property tests: the compiled bit-parallel engine is lane-for-lane
//! equivalent to the scalar netlist walker on **every shipped
//! netlist** — the 8- and 32-bit tx/rx pipelines, both escape sorter
//! styles, the CRC units and the OAM register file — under random
//! stimulus and mid-run single-lane resets.
//!
//! All 64 lanes carry *distinct* stimulus; a sample of lanes is
//! replayed on scalar simulators cycle-for-cycle, every output bus
//! compared every cycle.

use p5_fpga::{CompiledSim, Netlist, Sim, LANES};
use p5_lint::shipped_netlists;
use proptest::prelude::*;

/// Lanes replayed against a scalar reference (the other lanes still
/// carry stimulus, catching cross-lane contamination).
const CHECK_LANES: [usize; 3] = [0, 7, 63];
const CYCLES: usize = 20;

/// splitmix64-style mixer: a deterministic per-(cycle, bus, lane)
/// stimulus schedule both engines replay.
fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut x = seed
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ c.wrapping_mul(0x1656_67B1_9E37_79F9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn bus_mask(bits: usize) -> u64 {
    if bits >= 64 {
        !0
    } else {
        (1u64 << bits) - 1
    }
}

/// Drive one netlist's compiled simulation (all 64 lanes, distinct
/// stimulus) alongside scalar references for the check lanes; assert
/// every output bus matches every cycle.  At `reset_at`, lane
/// `reset_lane` alone is reset mid-run.
fn check_netlist(n: &Netlist, mut cs: CompiledSim, seed: u64, reset_at: usize, reset_lane: usize) {
    let mut scalars: Vec<Sim> = CHECK_LANES.iter().map(|_| Sim::new(n)).collect();
    let cin: Vec<_> = n.inputs.iter().map(|b| cs.in_port(&b.name)).collect();
    let cout: Vec<_> = n.outputs.iter().map(|b| cs.out_port(&b.name)).collect();
    let sin: Vec<_> = n
        .inputs
        .iter()
        .map(|b| scalars[0].in_port(&b.name))
        .collect();
    let sout: Vec<_> = n
        .outputs
        .iter()
        .map(|b| scalars[0].out_port(&b.name))
        .collect();
    for cycle in 0..CYCLES {
        for (bi, bus) in n.inputs.iter().enumerate() {
            let mask = bus_mask(bus.sigs.len());
            for lane in 0..LANES {
                let v = mix(seed, cycle as u64, bi as u64, lane as u64) & mask;
                cs.set_lane(cin[bi], lane, v);
            }
            for (si, &lane) in CHECK_LANES.iter().enumerate() {
                let v = mix(seed, cycle as u64, bi as u64, lane as u64) & mask;
                scalars[si].set_port(sin[bi], v);
            }
        }
        if cycle == reset_at {
            cs.reset_lane(reset_lane);
            if let Some(si) = CHECK_LANES.iter().position(|&l| l == reset_lane) {
                scalars[si].reset();
            }
        }
        for (bo, bus) in n.outputs.iter().enumerate() {
            for (si, &lane) in CHECK_LANES.iter().enumerate() {
                assert_eq!(
                    cs.get_lane(cout[bo], lane),
                    scalars[si].get_port(sout[bo]),
                    "{}: output {} lane {lane} cycle {cycle}",
                    n.name,
                    bus.name,
                );
            }
        }
        cs.step();
        for s in &mut scalars {
            s.step();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn compiled_gate_tape_matches_scalar_on_every_shipped_netlist(
        seed in any::<u64>(),
        reset_at in 2usize..14,
        reset_lane in 0usize..LANES,
    ) {
        for n in shipped_netlists() {
            let cs = CompiledSim::compile(&n);
            check_netlist(&n, cs, seed, reset_at, reset_lane);
        }
    }

    #[test]
    fn compiled_mapped_tape_matches_scalar_on_the_w32_modules(
        seed in any::<u64>(),
        reset_at in 2usize..14,
        reset_lane in 0usize..LANES,
    ) {
        // The mapped (4-LUT) tape on the paper's biggest modules: the
        // 32-bit escape pair and CRC unit, both mapping modes.
        use p5_fpga::{map, MapMode};
        use p5_rtl::{build_crc_unit, build_escape_detect, build_escape_gen, SorterStyle};
        for n in [
            build_escape_gen(4, SorterStyle::Barrel),
            build_escape_detect(4, SorterStyle::Barrel),
            build_crc_unit(p5_crc::FCS32, 4),
        ] {
            for mode in [MapMode::Depth, MapMode::Area] {
                let m = map(&n, mode);
                let cs = CompiledSim::compile_mapped(&n, &m);
                check_netlist(&n, cs, seed, reset_at, reset_lane);
            }
        }
    }
}
