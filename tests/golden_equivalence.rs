//! Property-based cross-checks: the cycle-accurate hardware model, the
//! behavioural software model, and the RFC-level codecs must be the
//! same function.

use p5_core::behavioral::{BehavioralRx, BehavioralTx};
use p5_core::{DatapathWidth, P5};
use proptest::prelude::*;

fn nasty_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            2 => Just(0x7Eu8),
            2 => Just(0x7Du8),
            5 => any::<u8>(),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cycle_tx_equals_behavioural_tx(
        payloads in proptest::collection::vec(nasty_payload(), 1..6),
        wide in any::<bool>(),
    ) {
        let width = if wide { DatapathWidth::W32 } else { DatapathWidth::W8 };
        let mut p5 = P5::new(width);
        let mut sw = BehavioralTx::new(0xFF);
        let mut golden = Vec::new();
        for p in &payloads {
            p5.submit(0x0021, p.clone()).unwrap();
            sw.encode_into(0x0021, p, &mut golden);
        }
        p5.run_until_idle(10_000_000);
        prop_assert_eq!(p5.take_wire_out(), golden);
    }

    #[test]
    fn cycle_rx_equals_behavioural_rx(
        payloads in proptest::collection::vec(nasty_payload(), 1..6),
        wide in any::<bool>(),
        idle_flags in 0usize..8,
    ) {
        let width = if wide { DatapathWidth::W32 } else { DatapathWidth::W8 };
        let mut sw = BehavioralTx::new(0xFF);
        let mut wire = vec![0x7E; idle_flags];
        for p in &payloads {
            sw.encode_into(0x0021, p, &mut wire);
        }
        let mut hw = P5::new(width);
        hw.put_wire_in(&wire);
        hw.run_until_idle(10_000_000);
        let hw_frames: Vec<Vec<u8>> = hw.take_received().into_iter().map(|f| f.payload).collect();
        let mut sw_rx = BehavioralRx::new(0xFF);
        let sw_frames: Vec<Vec<u8>> = sw_rx.decode(&wire).into_iter().map(|f| f.payload).collect();
        prop_assert_eq!(&hw_frames, &sw_frames);
        prop_assert_eq!(hw_frames, payloads);
    }

    #[test]
    fn corrupted_wire_never_delivers_wrong_bytes(
        payload in nasty_payload(),
        flips in proptest::collection::vec((any::<prop::sample::Index>(), 1u8..=255), 1..4),
    ) {
        let mut sw = BehavioralTx::new(0xFF);
        let mut wire = Vec::new();
        sw.encode_into(0x0021, &payload, &mut wire);
        for (pos, mask) in &flips {
            let i = pos.index(wire.len());
            wire[i] ^= mask;
        }
        // A corrupted closing flag leaves the receiver mid-frame; on a
        // real link idle flags follow and close it out.
        wire.extend_from_slice(&[0x7E; 8]);
        let mut hw = P5::new(DatapathWidth::W32);
        hw.put_wire_in(&wire);
        hw.run_until_idle(10_000_000);
        for f in hw.take_received() {
            // Anything delivered must equal the original payload — the
            // flips either left the frame intact (flipped twice on the
            // same bit) or were caught by the FCS.
            prop_assert_eq!(&f.payload, &payload);
        }
    }

    #[test]
    fn wire_chunking_into_p5_is_irrelevant(
        payloads in proptest::collection::vec(nasty_payload(), 1..4),
        chunk in 1usize..9,
    ) {
        let mut sw = BehavioralTx::new(0xFF);
        let mut wire = Vec::new();
        for p in &payloads {
            sw.encode_into(0x0021, p, &mut wire);
        }
        let mut whole = P5::new(DatapathWidth::W32);
        whole.put_wire_in(&wire);
        whole.run_until_idle(10_000_000);
        let a: Vec<_> = whole.take_received();

        let mut pieces = P5::new(DatapathWidth::W32);
        for c in wire.chunks(chunk) {
            pieces.put_wire_in(c);
            pieces.run(chunk as u64 * 3);
        }
        pieces.run_until_idle(10_000_000);
        let b: Vec<_> = pieces.take_received();
        prop_assert_eq!(a, b);
    }
}
