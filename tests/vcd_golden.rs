//! VCD golden test: the 8-bit Escape Generate netlist, driven with two
//! frames' worth of bytes, must dump the *identical* waveform from the
//! scalar `Sim` and from lane 0 of the 64-lane `CompiledSim` — and the
//! dump must be structurally valid VCD (header, timescale, one `$var`
//! per port and flop, strictly monotone timestamps).

use p5_fpga::{CompiledSim, Sim, VcdWriter};
use p5_hdlc::{destuff, stuff, Accm, DestuffOutcome};
use p5_rtl::{build_escape_gen, SorterStyle};

/// Two PPP frame bodies with the characters that force stuffing.
const FRAME1: &[u8] = &[0x00, 0x21, 0x45, 0x7E, 0x10, 0x7D, 0x31];
const FRAME2: &[u8] = &[0x00, 0x21, 0x7D, 0x7E, 0x7E, 0xAB, 0xCD, 0x02];

/// Drive both engines in lockstep through the 2-frame stream, sampling
/// a VCD writer per engine every cycle, and return the dumps plus the
/// stuffed wire bytes each engine produced.
fn run_both() -> (String, String, Vec<u8>, Vec<u8>) {
    let n = build_escape_gen(1, SorterStyle::OneHot);
    let mut gs = Sim::new(&n);
    let mut cs = CompiledSim::compile(&n);
    let mut wg = VcdWriter::new(&n);
    let mut wc = VcdWriter::new(&n);

    let stream: Vec<u8> = FRAME1.iter().chain(FRAME2.iter()).copied().collect();
    let (p_in, p_valid) = (cs.in_port("in_data"), cs.in_port("in_valid"));
    let (p_ready, p_ovalid, p_odata) = (
        cs.out_port("in_ready"),
        cs.out_port("out_valid"),
        cs.out_port("out_data"),
    );

    let (mut out_g, mut out_c) = (Vec::new(), Vec::new());
    let mut idx = 0usize;
    let mut drain = 0;
    let mut t = 0u64;
    while idx < stream.len() || drain < 4 {
        let feeding = idx < stream.len();
        let byte = if feeding { stream[idx] } else { 0 };
        gs.set("in_data", u64::from(byte));
        gs.set("in_valid", u64::from(feeding));
        cs.set(p_in, u64::from(byte));
        cs.set(p_valid, u64::from(feeding));
        if !feeding {
            drain += 1;
        }

        let ready_g = gs.get("in_ready") == 1;
        let ready_c = cs.get_lane(p_ready, 0) == 1;
        assert_eq!(ready_g, ready_c, "handshake diverged at cycle {t}");

        wg.sample_sim(t, &mut gs);
        wc.sample_lane(t, &mut cs, 0);

        gs.step();
        cs.step();
        if gs.get("out_valid") == 1 {
            out_g.push(gs.get("out_data") as u8);
        }
        if cs.get_lane(p_ovalid, 0) == 1 {
            out_c.push(cs.get_lane(p_odata, 0) as u8);
        }
        if feeding && ready_g {
            idx += 1;
        }
        t += 1;
    }
    (wg.render(), wc.render(), out_g, out_c)
}

#[test]
fn sim_and_compiled_lane0_dump_identical_vcd() {
    let (vcd_g, vcd_c, out_g, out_c) = run_both();
    assert_eq!(out_g, out_c, "wire bytes diverged between engines");
    assert_eq!(vcd_g, vcd_c, "waveforms diverged between engines");
}

#[test]
fn stuffed_stream_destuffs_back_to_both_frames() {
    let (_, _, wire, _) = run_both();
    let body: Vec<u8> = FRAME1.iter().chain(FRAME2.iter()).copied().collect();
    assert_eq!(wire, stuff(&body, Accm::SONET));
    assert_eq!(destuff(&wire), DestuffOutcome::Ok(body));
}

#[test]
fn vcd_is_structurally_valid() {
    let (vcd, _, _, _) = run_both();

    // Header blocks, in order.
    let defs_end = vcd
        .find("$enddefinitions $end")
        .expect("missing $enddefinitions");
    let header = &vcd[..defs_end];
    assert!(header.contains("$date"), "missing $date");
    assert!(
        header.contains("$timescale 1 ns $end"),
        "missing $timescale"
    );
    assert!(header.contains("$scope module escape_gen_8_bit $end"));

    // One $var per port (and one per flop).
    for port in ["in_data", "in_valid", "out_data", "out_valid", "in_ready"] {
        assert!(
            header
                .lines()
                .any(|l| { l.starts_with("$var wire ") && l.ends_with(&format!(" {port} $end")) }),
            "no $var declaration for {port}"
        );
    }
    let n = build_escape_gen(1, SorterStyle::OneHot);
    let vars = header
        .lines()
        .filter(|l| l.starts_with("$var wire "))
        .count();
    assert_eq!(vars, n.inputs.len() + n.outputs.len() + n.dffs.len());

    // Strictly monotone timestamps in the dump section.
    let times: Vec<u64> = vcd[defs_end..]
        .lines()
        .filter_map(|l| l.strip_prefix('#'))
        .map(|t| t.parse().expect("malformed timestamp"))
        .collect();
    assert!(!times.is_empty(), "no timestamps dumped");
    assert!(
        times.windows(2).all(|w| w[0] < w[1]),
        "timestamps not strictly monotone: {times:?}"
    );
}
