//! End-to-end programmability: two peers negotiate the FCS via LCP
//! (RFC 1570 FCS-Alternatives), then firmware reprograms both P⁵s'
//! FCS mode through the OAM — the full "programmable" story of the
//! paper: protocol negotiation driving datapath configuration.

use p5_core::oam::{ctrl, regs, MmioBus, Oam};
use p5_core::{DatapathWidth, P5};
use p5_ppp::endpoint::{Endpoint, EndpointConfig, Negotiator, Verdict};
use p5_ppp::lcp::{LcpOption, FCS_ALT_CCITT16, FCS_ALT_CCITT32};
use p5_ppp::lcp_negotiator::LcpNegotiator;

#[test]
fn fcs16_reconfiguration_after_negotiation() {
    // Peers agree on 16-bit FCS out of band (we drive the negotiator
    // verdict machinery directly), then firmware flips both devices.
    let mut a = P5::new(DatapathWidth::W32);
    let mut b = P5::new(DatapathWidth::W32);

    // The LCP layer: a peer asks for FCS-16; our policy Naks anything
    // without 32-bit support, but both-bits requests are acceptable.
    let mut negotiator = LcpNegotiator::new(1500, 7);
    let verdict = negotiator
        .review_peer_request(&[
            LcpOption::FcsAlternatives(FCS_ALT_CCITT16 | FCS_ALT_CCITT32).to_raw(),
        ]);
    assert_eq!(verdict, Verdict::Ack, "16+32 offer is acceptable");
    let verdict =
        negotiator.review_peer_request(&[LcpOption::FcsAlternatives(FCS_ALT_CCITT16).to_raw()]);
    assert!(
        matches!(verdict, Verdict::Nak(_)),
        "16-only gets Nak'd toward 32 by the default policy"
    );

    // Suppose the operator policy accepts FCS-16; firmware reprograms
    // both ends identically (FCS mode must match on a link).
    for dev in [&mut a, &mut b] {
        let mut bus = Oam::new(dev.oam.clone());
        let c = bus.read(regs::CTRL);
        bus.write(regs::CTRL, c | ctrl::FCS16);
    }
    // Reconfiguration requires re-instantiating the datapath (hardware:
    // a reset pulse; model: rebuild from the same OAM).
    let mut a = P5::with_oam(DatapathWidth::W32, a.oam.clone());
    let mut b = P5::with_oam(DatapathWidth::W32, b.oam.clone());

    a.submit(0x0021, b"sixteen bit link".to_vec()).unwrap();
    a.run_until_idle(1_000_000);
    let wire = a.take_wire_out();
    // FCS-16: 1 flag + 4 header + 16 payload + 2 fcs + 1 flag (no
    // escapes in this payload).
    assert_eq!(wire.len(), 1 + 4 + 16 + 2 + 1);
    b.put_wire_in(&wire);
    b.run_until_idle(1_000_000);
    let got = b.take_received();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].payload, b"sixteen bit link");
    assert_eq!(b.rx_counters().fcs_errors, 0);
}

#[test]
fn mismatched_fcs_modes_fail_loudly_not_silently() {
    // One end on FCS-32, the other on FCS-16: every frame must be
    // *detected* as bad (never delivered corrupt).
    let mut a = P5::new(DatapathWidth::W32); // FCS-32 transmitter
    let oam_b = p5_core::OamHandle::new();
    oam_b.with_state(|s| s.ctrl |= ctrl::FCS16);
    let mut b = P5::with_oam(DatapathWidth::W32, oam_b);

    for i in 0..10u8 {
        a.submit(0x0021, vec![i; 50]).unwrap();
    }
    a.run_until_idle(1_000_000);
    b.put_wire_in(&a.take_wire_out());
    b.run_until_idle(1_000_000);
    assert!(b.take_received().is_empty(), "no frame may pass the check");
    assert_eq!(b.rx_counters().fcs_errors, 10);
}

#[test]
fn lcp_negotiation_over_fcs16_link() {
    // Whole stack on FCS-16: LCP still converges.
    let make = || {
        let oam = p5_core::OamHandle::new();
        oam.with_state(|s| s.ctrl |= ctrl::FCS16);
        P5::with_oam(DatapathWidth::W32, oam)
    };
    let mut pa = make();
    let mut pb = make();
    let cfg = EndpointConfig {
        restart_period: 10,
        ..Default::default()
    };
    let mut a = Endpoint::new(LcpNegotiator::new(1500, 1), cfg);
    let mut b = Endpoint::new(LcpNegotiator::new(1500, 2), cfg);
    a.open();
    a.lower_up();
    b.open();
    b.lower_up();
    for now in 0..60 {
        a.tick(now);
        b.tick(now);
        for (p, pkt) in a.poll_output() {
            pa.submit(p.number(), pkt.to_bytes()).unwrap();
        }
        for (p, pkt) in b.poll_output() {
            pb.submit(p.number(), pkt.to_bytes()).unwrap();
        }
        pa.run(256);
        pb.run(256);
        let w = pa.take_wire_out();
        pb.put_wire_in(&w);
        let w = pb.take_wire_out();
        pa.put_wire_in(&w);
        pa.run(256);
        pb.run(256);
        for f in pa.take_received() {
            a.receive(&f.payload);
        }
        for f in pb.take_received() {
            b.receive(&f.payload);
        }
        if a.is_opened() && b.is_opened() {
            return;
        }
    }
    panic!(
        "LCP failed over the FCS-16 link: {:?}/{:?}",
        a.state(),
        b.state()
    );
}
