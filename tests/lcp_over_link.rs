//! LCP/IPCP negotiation over the real (simulated) link, including a
//! lossy link that forces the RFC 1661 restart machinery to work.

use p5_core::{DatapathWidth, P5};
use p5_ppp::endpoint::{Endpoint, EndpointConfig, LayerEvent};
use p5_ppp::ipcp::IpcpNegotiator;
use p5_ppp::lcp_negotiator::LcpNegotiator;
use p5_ppp::protocol::Protocol;
use rand::{rngs::StdRng, Rng, SeedableRng};

struct Peer {
    p5: P5,
    lcp: Endpoint<LcpNegotiator>,
    ipcp: Endpoint<IpcpNegotiator>,
    lcp_up: bool,
}

impl Peer {
    fn new(magic: u32, ip: [u8; 4]) -> Self {
        let cfg = EndpointConfig {
            restart_period: 5,
            max_configure: 20,
            max_terminate: 2,
        };
        let mut lcp = Endpoint::new(LcpNegotiator::new(1500, magic), cfg);
        let mut ipcp = Endpoint::new(IpcpNegotiator::new(ip), cfg);
        lcp.open();
        lcp.lower_up();
        ipcp.open();
        Self {
            p5: P5::new(DatapathWidth::W32),
            lcp,
            ipcp,
            lcp_up: false,
        }
    }

    fn poll(&mut self, now: u64) {
        self.lcp.tick(now);
        self.ipcp.tick(now);
        for (proto, pkt) in self.lcp.poll_output() {
            self.p5.submit(proto.number(), pkt.to_bytes());
        }
        for (proto, pkt) in self.ipcp.poll_output() {
            self.p5.submit(proto.number(), pkt.to_bytes());
        }
        for ev in self.lcp.poll_layer_events() {
            match ev {
                LayerEvent::Up => {
                    self.lcp_up = true;
                    self.ipcp.lower_up();
                }
                LayerEvent::Down => {
                    self.lcp_up = false;
                    self.ipcp.lower_down();
                }
                _ => {}
            }
        }
        self.p5.run(512);
        for f in self.p5.take_received() {
            match Protocol::from_number(f.protocol) {
                Protocol::Lcp => self.lcp.receive(&f.payload),
                Protocol::Ipcp if self.lcp_up => self.ipcp.receive(&f.payload),
                _ => {}
            }
        }
    }
}

fn ferry(a: &mut Peer, b: &mut Peer, lose: &mut impl FnMut() -> bool) {
    let w = a.p5.take_wire_out();
    if !lose() {
        b.p5.put_wire_in(&w);
    }
    let w = b.p5.take_wire_out();
    if !lose() {
        a.p5.put_wire_in(&w);
    }
}

#[test]
fn clean_link_brings_ipcp_up() {
    let mut a = Peer::new(0xAAAA_0001, [10, 9, 0, 1]);
    let mut b = Peer::new(0xBBBB_0002, [10, 9, 0, 2]);
    let mut never = || false;
    for now in 0..300 {
        a.poll(now);
        b.poll(now);
        ferry(&mut a, &mut b, &mut never);
        if a.ipcp.is_opened() && b.ipcp.is_opened() {
            break;
        }
    }
    assert!(a.lcp.is_opened() && b.lcp.is_opened());
    assert!(a.ipcp.is_opened() && b.ipcp.is_opened());
    assert_eq!(a.ipcp.negotiator.peer_addr(), Some([10, 9, 0, 2]));
    assert_eq!(b.ipcp.negotiator.peer_addr(), Some([10, 9, 0, 1]));
}

#[test]
fn lossy_link_converges_via_retransmission() {
    let mut a = Peer::new(0xAAAA_0001, [10, 9, 0, 1]);
    let mut b = Peer::new(0xBBBB_0002, [10, 9, 0, 2]);
    let mut rng = StdRng::seed_from_u64(5);
    // 30% of wire transfers vanish early on, then the link cleans up.
    let mut step = 0u32;
    let mut lossy = move || {
        step += 1;
        step < 600 && rng.gen_bool(0.30)
    };
    let mut opened_at = None;
    for now in 0..4000u64 {
        a.poll(now);
        b.poll(now);
        ferry(&mut a, &mut b, &mut lossy);
        if a.ipcp.is_opened() && b.ipcp.is_opened() {
            opened_at = Some(now);
            break;
        }
    }
    assert!(
        opened_at.is_some(),
        "negotiation must survive 30% early loss (a {:?}/{:?}, b {:?}/{:?})",
        a.lcp.state(),
        a.ipcp.state(),
        b.lcp.state(),
        b.ipcp.state()
    );
}

#[test]
fn graceful_close_propagates() {
    let mut a = Peer::new(1, [10, 0, 0, 1]);
    let mut b = Peer::new(2, [10, 0, 0, 2]);
    let mut never = || false;
    for now in 0..300 {
        a.poll(now);
        b.poll(now);
        ferry(&mut a, &mut b, &mut never);
        if a.ipcp.is_opened() && b.ipcp.is_opened() {
            break;
        }
    }
    assert!(a.lcp.is_opened());
    a.lcp.close();
    for now in 300..600 {
        a.poll(now);
        b.poll(now);
        ferry(&mut a, &mut b, &mut never);
    }
    assert!(!a.lcp.is_opened());
    assert!(!b.lcp.is_opened());
}
