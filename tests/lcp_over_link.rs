//! LCP/IPCP negotiation over the real (simulated) link, including a
//! lossy link that forces the RFC 1661 restart machinery to work.  The
//! devices and the (optionally impaired) wire come from
//! [`LinkBuilder::build_duplex`]; loss is a seeded [`FaultSpec`]
//! transfer-loss plan rather than an ad-hoc RNG.

use p5::ppp::endpoint::{Endpoint, EndpointConfig, LayerEvent};
use p5::ppp::ipcp::IpcpNegotiator;
use p5::ppp::lcp_negotiator::LcpNegotiator;
use p5::ppp::protocol::Protocol;
use p5::ppp::EndpointStage;
use p5::prelude::*;

/// A peer built on the stream layer: each control protocol is an
/// [`EndpointStage`] fed from / drained to tagged `[proto, packet]`
/// frame buffers, with one [`DuplexLink`] end in between.  The stage
/// drives its own restart clock (one tick per drain), so `poll` takes
/// no time argument.
struct Peer {
    lcp: EndpointStage<LcpNegotiator>,
    ipcp: EndpointStage<IpcpNegotiator>,
    ctl: WireBuf,
    lcp_up: bool,
}

impl Peer {
    fn new(magic: u32, ip: [u8; 4]) -> Self {
        let cfg = EndpointConfig {
            restart_period: 5,
            max_configure: 20,
            max_terminate: 2,
        };
        let mut lcp = Endpoint::new(LcpNegotiator::new(1500, magic), cfg);
        let mut ipcp = Endpoint::new(IpcpNegotiator::new(ip), cfg);
        lcp.open();
        lcp.lower_up();
        ipcp.open();
        Self {
            lcp: EndpointStage::new(lcp),
            ipcp: EndpointStage::new(ipcp),
            ctl: WireBuf::new(),
            lcp_up: false,
        }
    }

    fn poll(&mut self, end: &mut LinkEnd) {
        // Drain both endpoints' control traffic into one tagged stream,
        // then decap into the transmit queue.
        self.lcp.drain(&mut self.ctl);
        self.ipcp.drain(&mut self.ctl);
        let mut frame = Vec::new();
        while self.ctl.pop_frame_into(&mut frame).is_some() {
            let (proto, packet) = decap(&frame).expect("endpoint frames carry a protocol");
            end.submit(proto, packet.to_vec()).unwrap();
        }
        for ev in self.lcp.endpoint_mut().poll_layer_events() {
            match ev {
                LayerEvent::Up => {
                    self.lcp_up = true;
                    self.ipcp.endpoint_mut().lower_up();
                }
                LayerEvent::Down => {
                    self.lcp_up = false;
                    self.ipcp.endpoint_mut().lower_down();
                }
                _ => {}
            }
        }
        end.run(512);
        // Route received frames to the matching endpoint stage (the
        // stage is not a demux: it rejects foreign protocols).
        let mut to_lcp = WireBuf::new();
        let mut to_ipcp = WireBuf::new();
        for f in end.take_received() {
            match Protocol::from_number(f.protocol) {
                Protocol::Lcp => encap(f.protocol, &f.payload, &mut to_lcp),
                Protocol::Ipcp if self.lcp_up => encap(f.protocol, &f.payload, &mut to_ipcp),
                _ => {}
            }
        }
        self.lcp.offer(&mut to_lcp);
        self.ipcp.offer(&mut to_ipcp);
    }

    fn lcp_opened(&self) -> bool {
        self.lcp.endpoint().is_opened()
    }

    fn ipcp_opened(&self) -> bool {
        self.ipcp.endpoint().is_opened()
    }
}

#[test]
fn clean_link_brings_ipcp_up() {
    let mut a = Peer::new(0xAAAA_0001, [10, 9, 0, 1]);
    let mut b = Peer::new(0xBBBB_0002, [10, 9, 0, 2]);
    let mut link = LinkBuilder::new().build_duplex().unwrap();
    for _ in 0..300 {
        a.poll(&mut link.a);
        b.poll(&mut link.b);
        link.exchange();
        if a.ipcp_opened() && b.ipcp_opened() {
            break;
        }
    }
    assert!(a.lcp_opened() && b.lcp_opened());
    assert!(a.ipcp_opened() && b.ipcp_opened());
    assert_eq!(
        a.ipcp.endpoint().negotiator.peer_addr(),
        Some([10, 9, 0, 2])
    );
    assert_eq!(
        b.ipcp.endpoint().negotiator.peer_addr(),
        Some([10, 9, 0, 1])
    );
}

#[test]
fn lossy_link_converges_via_retransmission() {
    let mut a = Peer::new(0xAAAA_0001, [10, 9, 0, 1]);
    let mut b = Peer::new(0xBBBB_0002, [10, 9, 0, 2]);
    // 30% of wire transfers vanish early on, then the link cleans up —
    // the deterministic outage-then-recovery scenario.
    let plan = FaultSpec::clean()
        .transfer_loss(0.30)
        .compile(5)
        .expect("valid spec");
    let mut link = LinkBuilder::new().fault(plan).build_duplex().unwrap();
    let mut opened_at = None;
    for now in 0..4000u64 {
        a.poll(&mut link.a);
        b.poll(&mut link.b);
        link.exchange();
        if now == 300 {
            link.clear_fault();
        }
        if a.ipcp_opened() && b.ipcp_opened() {
            opened_at = Some(now);
            break;
        }
    }
    assert!(
        opened_at.is_some(),
        "negotiation must survive 30% early loss (a {:?}/{:?}, b {:?}/{:?}, lost {})",
        a.lcp.endpoint().state(),
        a.ipcp.endpoint().state(),
        b.lcp.endpoint().state(),
        b.ipcp.endpoint().state(),
        link.fault_stats().transfers_lost,
    );
}

#[test]
fn graceful_close_propagates() {
    let mut a = Peer::new(1, [10, 0, 0, 1]);
    let mut b = Peer::new(2, [10, 0, 0, 2]);
    let mut link = LinkBuilder::new().build_duplex().unwrap();
    for _ in 0..300 {
        a.poll(&mut link.a);
        b.poll(&mut link.b);
        link.exchange();
        if a.ipcp_opened() && b.ipcp_opened() {
            break;
        }
    }
    assert!(a.lcp_opened());
    a.lcp.endpoint_mut().close();
    for _ in 0..300 {
        a.poll(&mut link.a);
        b.poll(&mut link.b);
        link.exchange();
    }
    assert!(!a.lcp_opened());
    assert!(!b.lcp_opened());
}
