//! The hardware pipeline as an actual parallel program: transmitter,
//! channel and receiver on separate threads connected by crossbeam
//! channels, with the OAM register file shared through `parking_lot`
//! exactly as the datapath/host split works on the SoPC.

use crossbeam::channel;
use p5_core::oam::{regs, MmioBus, Oam, OamHandle};
use p5_core::{DatapathWidth, WireBuf, WordStream, P5};
use std::thread;

#[test]
fn three_stage_threaded_pipeline_delivers_in_order() {
    let (wire_tx, wire_rx) = channel::bounded::<Vec<u8>>(64);
    let (chan_tx, chan_rx) = channel::bounded::<Vec<u8>>(64);
    let datagrams: Vec<Vec<u8>> = (0..200u16)
        .map(|i| {
            (0..(40 + (i % 60) as usize))
                .map(|j| (i as usize * 13 + j) as u8)
                .collect()
        })
        .collect();
    let expected = datagrams.clone();

    let rx_oam = OamHandle::new();
    let rx_oam_for_host = rx_oam.clone();

    // Transmitter thread: clock a P5, ship wire chunks off its
    // WordStream PHY end (zero-copy into a reusable WireBuf).
    let producer = thread::spawn(move || {
        let mut p5 = P5::new(DatapathWidth::W32);
        for d in datagrams {
            p5.submit(0x0021, d).unwrap();
        }
        let mut wire = WireBuf::new();
        while !p5.tx.idle() {
            p5.run(1024);
            p5.drain(&mut wire);
            if !wire.is_empty() {
                wire_tx.send(wire.take_vec()).unwrap();
            }
        }
    });

    // Channel thread: a transparent section (could impair; here clean).
    let section = thread::spawn(move || {
        for chunk in wire_rx.iter() {
            chan_tx.send(chunk).unwrap();
        }
    });

    // Receiver thread: clock the receiving P5, deliver frames.
    let consumer = thread::spawn(move || {
        let mut p5 = P5::with_oam(DatapathWidth::W32, rx_oam);
        let mut out = Vec::new();
        let mut inbuf = WireBuf::new();
        for chunk in chan_rx.iter() {
            inbuf.push_slice(&chunk);
            p5.offer(&mut inbuf);
            p5.run(chunk.len() as u64);
            out.extend(p5.take_received());
        }
        p5.run_until_idle(10_000_000);
        out.extend(p5.take_received());
        out
    });

    producer.join().unwrap();
    section.join().unwrap();
    let frames = consumer.join().unwrap();

    assert_eq!(frames.len(), expected.len());
    for (f, d) in frames.iter().zip(&expected) {
        assert_eq!(&f.payload, d);
    }
    // The host thread (this one) reads the shared OAM afterwards.
    let bus = Oam::new(rx_oam_for_host);
    assert_eq!(bus.read(regs::RX_FRAMES), expected.len() as u32);
    assert_eq!(bus.read(regs::FCS_ERRORS), 0);
}

#[test]
fn duplex_threads_cross_traffic() {
    // Two P5s, each on its own thread, full duplex over two channels.
    let (a2b_tx, a2b_rx) = channel::bounded::<Vec<u8>>(16);
    let (b2a_tx, b2a_rx) = channel::bounded::<Vec<u8>>(16);

    let station = |name: &'static str,
                   outbound: channel::Sender<Vec<u8>>,
                   inbound: channel::Receiver<Vec<u8>>,
                   count: u16| {
        thread::spawn(move || {
            let mut p5 = P5::new(DatapathWidth::W32);
            for i in 0..count {
                p5.submit(0x0021, format!("{name}-{i}").into_bytes())
                    .unwrap();
            }
            let mut got = Vec::new();
            let mut wire = WireBuf::new();
            let mut inbuf = WireBuf::new();
            let mut rounds = 0;
            // Done once our transmitter has drained and the peer's
            // `count` frames have all arrived.  The round cap turns a
            // genuine loss bug into an assertion failure rather than a
            // hang; an idle-count heuristic would race the peer thread's
            // scheduling.
            while !(p5.tx.idle() && got.len() >= count as usize) && rounds < 10_000 {
                p5.run(256);
                p5.drain(&mut wire);
                if !wire.is_empty() {
                    // Peer may have finished; ignore send failures then.
                    let _ = outbound.send(wire.take_vec());
                }
                let mut progressed = false;
                while let Ok(chunk) = inbound.try_recv() {
                    inbuf.push_slice(&chunk);
                    progressed = true;
                }
                p5.offer(&mut inbuf);
                p5.run(256);
                got.extend(p5.take_received());
                if !progressed {
                    thread::yield_now();
                }
                rounds += 1;
            }
            // Flush wire bytes produced on the final round: the peer may
            // still be waiting on them.
            p5.drain(&mut wire);
            if !wire.is_empty() {
                let _ = outbound.send(wire.take_vec());
            }
            got
        })
    };

    let a = station("alpha", a2b_tx, b2a_rx, 40);
    let b = station("beta", b2a_tx, a2b_rx, 40);
    let got_a = a.join().unwrap();
    let got_b = b.join().unwrap();
    assert_eq!(got_a.len(), 40);
    assert_eq!(got_b.len(), 40);
    assert_eq!(got_a[0].payload, b"beta-0");
    assert_eq!(got_b[39].payload, b"alpha-39");
}
