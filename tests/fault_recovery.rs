//! Recovery invariants under the p5-fault chaos model (DESIGN.md §14):
//!
//! * stuff ∘ corrupt ∘ destuff never delivers a frame the transmitter
//!   did not send — arbitrary seeded corruption is caught by the FCS
//!   and surfaces as a counted discard, never as silent corruption;
//! * after a single mid-stream corruption the deframer re-delineates
//!   and delivers a good frame within the documented byte bound;
//! * every [`FaultKind`] reproduces exactly from its seed (the
//!   regression contract the `fault_report` scenarios rely on).

use p5::hdlc::{DeframeEvent, Deframer, Framer, FramerConfig};
use p5::prelude::*;
use proptest::prelude::*;

/// Frame bodies biased towards flag/escape octets (the stuffing worst
/// case), short enough that the default `max_body` never trips.
fn bodies_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![
                2 => Just(0x7Eu8),
                2 => Just(0x7Du8),
                6 => any::<u8>(),
            ],
            1..100,
        ),
        3..8,
    )
}

/// A palette of chaos mixes: bit-level, bursty, each structural kind,
/// and a kitchen-sink blend.
fn chaos_spec(idx: usize) -> FaultSpec {
    match idx {
        0 => FaultSpec::clean().ber(2e-3),
        1 => FaultSpec::clean().burst(1e-3, 0.25, 0.5),
        2 => FaultSpec::clean().slip(3e-3).duplicate(3e-3),
        3 => FaultSpec::clean().truncate(3e-3, 8).abort(2e-3),
        4 => FaultSpec::clean().spurious_flag(3e-3),
        _ => FaultSpec::clean()
            .ber(5e-4)
            .slip(1e-3)
            .duplicate(1e-3)
            .truncate(1e-3, 4)
            .abort(1e-3)
            .spurious_flag(1e-3),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Whatever the plan does to the stuffed stream, the receiver only
    // ever delivers bodies the transmitter framed, in order.
    #[test]
    fn corruption_never_yields_an_unsent_frame(
        bodies in bodies_strategy(),
        spec_idx in 0usize..6,
        seed in any::<u64>(),
    ) {
        let mut framer = Framer::new(FramerConfig::default());
        let mut wire = Vec::new();
        for b in &bodies {
            wire.extend_from_slice(&framer.encode(b));
        }
        let mut plan = chaos_spec(spec_idx)
            .compile(seed)
            .expect("palette specs are valid");
        let mut corrupted = Vec::new();
        plan.corrupt_into(&wire, &mut corrupted);

        let mut deframer = Deframer::new(DeframerConfig::default());
        let mut bi = bodies.iter();
        for ev in deframer.push_bytes(&corrupted) {
            if let DeframeEvent::Frame(got) = ev {
                // In-order subsequence: each delivered body must match a
                // not-yet-matched sent body.
                prop_assert!(
                    bi.any(|b| *b == got),
                    "delivered a frame the transmitter never sent (seed {seed}, mix {spec_idx})"
                );
            }
        }
    }

    // One corrupted byte costs at most `resync_bound_bytes` of stream
    // before a good frame is delivered again, provided good traffic
    // follows the damage.
    #[test]
    fn resync_happens_within_the_documented_bound(
        bodies in bodies_strategy(),
        hit_sel in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        // Bodies max out at 99 bytes, comfortably under this max_body:
        // even a flag corruption that merges two frames stays deliverable
        // (and therefore FCS-checked) rather than growing into a giant.
        let cfg = DeframerConfig {
            max_body: 256,
            ..DeframerConfig::default()
        };
        let bound = cfg.resync_bound_bytes();

        let mut framer = Framer::new(FramerConfig::default());
        let mut wire = Vec::new();
        for b in &bodies {
            wire.extend_from_slice(&framer.encode(b));
        }
        let damage_span = wire.len();
        // Guarantee good traffic after the hit: two clean trailer frames.
        let trailers = [vec![0xA5u8; 60], vec![0x5Au8; 60]];
        for t in &trailers {
            wire.extend_from_slice(&framer.encode(t));
        }
        let hit = hit_sel as usize % damage_span;
        wire[hit] ^= 1u8 << flip_bit;

        let mut deframer = Deframer::new(cfg);
        let mut recovered = None;
        for (i, &b) in wire.iter().enumerate() {
            if let Some(DeframeEvent::Frame(_)) = deframer.push_byte(b) {
                if i > hit {
                    recovered = Some(i - hit);
                    break;
                }
            }
        }
        let dist = recovered.expect("good trailer frames must eventually deliver");
        prop_assert!(
            dist <= bound,
            "re-delineation took {dist} bytes, documented bound is {bound}"
        );
    }
}

/// Each fault kind reproduces byte-for-byte and count-for-count from
/// its seed — the regression contract behind every seeded scenario.
#[test]
fn every_fault_kind_is_seed_reproducible() {
    let spec_for = |kind: FaultKind| -> FaultSpec {
        match kind {
            FaultKind::BitError => FaultSpec::clean().ber(2e-3),
            FaultKind::Burst => FaultSpec::clean().burst(1e-3, 0.25, 0.5),
            FaultKind::Slip => FaultSpec::clean().slip(2e-3),
            FaultKind::Duplicate => FaultSpec::clean().duplicate(2e-3),
            FaultKind::Truncate => FaultSpec::clean().truncate(2e-3, 8),
            FaultKind::Abort => FaultSpec::clean().abort(2e-3),
            FaultKind::SpuriousFlag => FaultSpec::clean().spurious_flag(2e-3),
            FaultKind::Stall => FaultSpec::clean().stall(0.1, 8),
            FaultKind::TransferLoss => FaultSpec::clean().transfer_loss(0.3),
        }
    };
    let input: Vec<u8> = (0..8192u32)
        .map(|i| (i.wrapping_mul(37) >> 3) as u8)
        .collect();

    for kind in FaultKind::ALL {
        // `out` carries the corrupted stream for the byte-stream kinds;
        // `gates` carries the per-call decision sequence for the
        // time-domain kinds (stall storms, transfer loss).
        let run = |seed: u64| {
            let mut plan = spec_for(kind)
                .compile(seed)
                .expect("canonical specs are valid");
            let mut out = Vec::new();
            let mut gates = Vec::new();
            match kind {
                FaultKind::Stall => {
                    for _ in 0..2000 {
                        gates.push(plan.stall_gate());
                    }
                    plan.release_stall();
                }
                FaultKind::TransferLoss => {
                    for _ in 0..2000 {
                        gates.push(plan.lose_transfer());
                    }
                }
                _ => plan.corrupt_into(&input, &mut out),
            }
            (out, gates, plan.stats())
        };
        let (out_a, gates_a, stats_a) = run(0xFA17);
        let (out_b, gates_b, stats_b) = run(0xFA17);
        let (out_c, gates_c, _) = run(0xFA18);
        assert!(
            stats_a.count(kind) > 0,
            "{}: the canonical spec must fire its own kind",
            kind.name()
        );
        assert_eq!(out_a, out_b, "{}: same seed, same bytes", kind.name());
        assert_eq!(
            gates_a,
            gates_b,
            "{}: same seed, same schedule",
            kind.name()
        );
        assert_eq!(stats_a, stats_b, "{}: same seed, same counts", kind.name());
        assert_ne!(
            (out_a, gates_a),
            (out_c, gates_c),
            "{}: a different seed must perturb the schedule",
            kind.name()
        );
    }
}
