//! Three-way cross-checks: gate-level netlists (`p5-rtl`) vs the
//! cycle-accurate model (`p5-core`) vs the behavioural codec
//! (`p5-hdlc`/`p5-crc`) — all three must compute the same streams.

use p5_fpga::Sim;
use p5_rtl::{build_crc_core, build_escape_detect, build_escape_gen, SorterStyle};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Drive the escape-gen netlist with a byte stream, collect output.
/// Ports are resolved once up front; the per-cycle loop runs on dense
/// handles and a reused word buffer.
fn netlist_stuff(width: usize, stream: &[u8]) -> Vec<u8> {
    let n = build_escape_gen(width, SorterStyle::OneHot);
    let mut sim = Sim::new(&n);
    let in_data = sim.in_port("in_data");
    let in_valid = sim.in_port("in_valid");
    let in_ready = sim.out_port("in_ready");
    let out_valid = sim.out_port("out_valid");
    let out_data = sim.out_port("out_data");
    let mut out = Vec::new();
    let mut word = Vec::new();
    let mut idx = 0;
    let mut quiet = 0;
    while quiet < 16 {
        if idx + width <= stream.len() {
            sim.set_bytes_port(in_data, &stream[idx..idx + width]);
            sim.set_port(in_valid, 1);
        } else {
            sim.set_port(in_valid, 0);
            quiet += 1;
        }
        let ready = sim.get_port(in_ready) == 1;
        sim.step();
        if sim.get_port(out_valid) == 1 {
            sim.get_bytes_into(out_data, &mut word);
            out.extend_from_slice(&word);
        }
        if idx + width <= stream.len() && ready {
            idx += width;
        }
    }
    out
}

/// Drive the escape-detect netlist, collect output.
fn netlist_destuff(width: usize, wire: &[u8]) -> Vec<u8> {
    let n = build_escape_detect(width, SorterStyle::OneHot);
    let mut sim = Sim::new(&n);
    let in_data = sim.in_port("in_data");
    let in_valid = sim.in_port("in_valid");
    let out_valid = sim.out_port("out_valid");
    let out_data = sim.out_port("out_data");
    let mut out = Vec::new();
    let mut word = Vec::new();
    let mut idx = 0;
    let mut quiet = 0;
    while quiet < 16 {
        if idx + width <= wire.len() {
            sim.set_bytes_port(in_data, &wire[idx..idx + width]);
            sim.set_port(in_valid, 1);
            idx += width;
        } else {
            sim.set_port(in_valid, 0);
            quiet += 1;
        }
        sim.step();
        if sim.get_port(out_valid) == 1 {
            sim.get_bytes_into(out_data, &mut word);
            out.extend_from_slice(&word);
        }
    }
    out
}

#[test]
fn stuff_netlist_vs_behavioural_vs_cycle_model() {
    let mut rng = StdRng::seed_from_u64(2003);
    for _ in 0..5 {
        let body: Vec<u8> = (0..rng.gen_range(16..200))
            .map(|_| match rng.gen_range(0..4) {
                0 => 0x7E,
                1 => 0x7D,
                _ => rng.gen(),
            })
            .collect();
        let golden = p5_hdlc::stuff(&body, p5_hdlc::Accm::SONET);

        // Width-1 netlist reproduces the whole stream.
        let w1 = netlist_stuff(1, &body);
        assert_eq!(w1, golden);

        // Width-4 netlist reproduces the word-aligned prefix.
        let padded: Vec<u8> = {
            let mut p = body.clone();
            while !p.len().is_multiple_of(4) {
                p.push(0x00);
            }
            p
        };
        let golden4 = p5_hdlc::stuff(&padded, p5_hdlc::Accm::SONET);
        let w4 = netlist_stuff(4, &padded);
        assert!(golden4.len() - w4.len() <= 3);
        assert_eq!(w4[..], golden4[..w4.len()]);
    }
}

#[test]
fn destuff_netlist_inverts_stuff_netlist() {
    let mut rng = StdRng::seed_from_u64(7);
    for width in [1usize, 4] {
        for _ in 0..4 {
            let len = match width {
                1 => rng.gen_range(8..120),
                _ => 4 * rng.gen_range(4..40),
            };
            let body: Vec<u8> = (0..len)
                .map(|_| match rng.gen_range(0..3) {
                    0 => 0x7E,
                    1 => 0x7D,
                    _ => rng.gen(),
                })
                .collect();
            let mut wire = netlist_stuff(1, &body); // full stream via w1
            while !wire.len().is_multiple_of(width) {
                wire.push(0x00); // pad (flag-free filler)
            }
            let back = netlist_destuff(width, &wire);
            // Up to 3 bytes may remain in the w4 refill buffer.
            let expect_len = back.len().min(body.len());
            assert_eq!(back[..expect_len], body[..expect_len], "width {width}");
            assert!(body.len() - expect_len <= 3 + (wire.len() % 4));
        }
    }
}

#[test]
fn crc_netlist_matches_all_software_engines() {
    use p5_crc::{BitwiseEngine, CrcEngine, FCS32};
    let mut rng = StdRng::seed_from_u64(99);
    let data: Vec<u8> = (0..256).map(|_| rng.gen()).collect();
    for width in [1usize, 4] {
        let n = build_crc_core(FCS32, width);
        let mut sim = Sim::new(&n);
        sim.set("en", 1);
        sim.set("init", 0);
        for word in data.chunks(width) {
            sim.set_bytes("data", word);
            sim.step();
        }
        let mut sw = BitwiseEngine::new(FCS32);
        sw.update(&data);
        assert_eq!(sim.get("crc") as u32, sw.residue(), "width {width}");
    }
}

#[test]
fn hardware_fcs_check_agrees_with_software_check() {
    use p5_crc::FCS32;
    let body = b"gate level agrees with software";
    let mut frame = body.to_vec();
    frame.extend_from_slice(&p5_crc::fcs32_wire_bytes(p5_crc::fcs32(body)));
    while !frame.len().is_multiple_of(4) {
        frame.push(0); // padding would break the check — handle by bytes
    }
    // Use the byte-wide core so no padding is needed.
    let n = build_crc_core(FCS32, 1);
    let mut sim = Sim::new(&n);
    sim.set("en", 1);
    sim.set("init", 0);
    let mut frame = body.to_vec();
    frame.extend_from_slice(&p5_crc::fcs32_wire_bytes(p5_crc::fcs32(body)));
    for &byte in &frame {
        sim.set_bytes("data", &[byte]);
        sim.step();
    }
    assert_eq!(sim.get("fcs_ok"), 1);
    assert!(p5_crc::check_fcs32(&frame));
}

#[test]
fn mapped_escape_gen_matches_gate_level_at_lut_granularity() {
    // Verify the technology mapper itself on the paper's biggest module:
    // map the 32-bit escape generate, compute every LUT's truth table,
    // and co-simulate the LUT network against the gate network.
    use p5_fpga::{map, LutNetwork, LutSim, MapMode, Sim};
    let n = build_escape_gen(4, SorterStyle::Barrel);
    for mode in [MapMode::Depth, MapMode::Area] {
        let m = map(&n, mode);
        let mut luts = LutSim::new(LutNetwork::new(&n, &m));
        let mut gates = Sim::new(&n);
        let mut rng = StdRng::seed_from_u64(41);
        for cycle in 0..200 {
            let word: [u8; 4] = [
                if rng.gen_bool(0.3) { 0x7E } else { rng.gen() },
                rng.gen(),
                if rng.gen_bool(0.3) { 0x7D } else { rng.gen() },
                rng.gen(),
            ];
            let valid = rng.gen_bool(0.8) as u64;
            luts.set_bytes("in_data", &word);
            luts.set("in_valid", valid);
            gates.set_bytes("in_data", &word);
            gates.set("in_valid", valid);
            for out in ["out_data", "out_valid", "in_ready", "occupancy"] {
                assert_eq!(
                    luts.get(out),
                    gates.get(out),
                    "{mode:?} cycle {cycle} {out}"
                );
            }
            luts.step();
            gates.step();
        }
    }
}

#[test]
fn compiled_crc_netlist_matches_software_in_all_64_lanes() {
    // The vectorized engine against the software golden model: 64
    // *distinct* byte streams, one per lane, through one compiled pass
    // of the byte-wide CRC core.
    use p5_crc::{BitwiseEngine, CrcEngine, FCS32};
    use p5_fpga::{CompiledSim, LANES};
    let mut rng = StdRng::seed_from_u64(2026);
    let streams: Vec<Vec<u8>> = (0..LANES)
        .map(|_| (0..48).map(|_| rng.gen()).collect())
        .collect();
    let n = build_crc_core(FCS32, 1);
    let mut cs = CompiledSim::compile(&n);
    let data = cs.in_port("data");
    let en = cs.in_port("en");
    let init = cs.in_port("init");
    let crc = cs.out_port("crc");
    cs.set(en, 1);
    cs.set(init, 0);
    for i in 0..48 {
        for (lane, s) in streams.iter().enumerate() {
            cs.set_bytes_lane(data, lane, &[s[i]]);
        }
        cs.step();
    }
    for (lane, s) in streams.iter().enumerate() {
        let mut sw = BitwiseEngine::new(FCS32);
        sw.update(s);
        assert_eq!(cs.get_lane(crc, lane) as u32, sw.residue(), "lane {lane}");
    }
}

#[test]
fn compiled_escape_gen_stuffs_64_distinct_streams_at_once() {
    // 64 independent transmitters in one compiled simulation, each
    // with its own body (different lengths, flag-heavy), each lane's
    // wire output checked against the behavioural stuffer — including
    // per-lane backpressure: a lane only advances its feed cursor when
    // its own `in_ready` was high.
    use p5_fpga::{CompiledSim, LANES};
    let n = build_escape_gen(1, SorterStyle::OneHot);
    let mut cs = CompiledSim::compile(&n);
    let in_data = cs.in_port("in_data");
    let in_valid = cs.in_port("in_valid");
    let in_ready = cs.out_port("in_ready");
    let out_valid = cs.out_port("out_valid");
    let out_data = cs.out_port("out_data");
    let mut rng = StdRng::seed_from_u64(64);
    let bodies: Vec<Vec<u8>> = (0..LANES)
        .map(|lane| {
            (0..24 + lane)
                .map(|_| match rng.gen_range(0..4) {
                    0 => 0x7E,
                    1 => 0x7D,
                    _ => rng.gen(),
                })
                .collect()
        })
        .collect();
    let mut idx = [0usize; LANES];
    let mut outs: Vec<Vec<u8>> = vec![Vec::new(); LANES];
    for _ in 0..2000 {
        let mut ready = [false; LANES];
        for lane in 0..LANES {
            if idx[lane] < bodies[lane].len() {
                cs.set_bytes_lane(in_data, lane, &[bodies[lane][idx[lane]]]);
                cs.set_lane(in_valid, lane, 1);
            } else {
                cs.set_lane(in_valid, lane, 0);
            }
            ready[lane] = cs.get_lane(in_ready, lane) == 1;
        }
        cs.step();
        for lane in 0..LANES {
            if cs.get_lane(out_valid, lane) == 1 {
                outs[lane].push(cs.get_lane(out_data, lane) as u8);
            }
            if idx[lane] < bodies[lane].len() && ready[lane] {
                idx[lane] += 1;
            }
        }
    }
    for lane in 0..LANES {
        assert_eq!(idx[lane], bodies[lane].len(), "lane {lane} fed fully");
        assert_eq!(
            outs[lane],
            p5_hdlc::stuff(&bodies[lane], p5_hdlc::Accm::SONET),
            "lane {lane}"
        );
    }
}

#[test]
fn mapped_crc_unit_matches_gate_level_at_lut_granularity() {
    use p5_crc::FCS32;
    use p5_fpga::{map, LutNetwork, LutSim, MapMode, Sim};
    let n = p5_rtl::build_crc_unit(FCS32, 4);
    let m = map(&n, MapMode::Area);
    let mut luts = LutSim::new(LutNetwork::new(&n, &m));
    let mut gates = Sim::new(&n);
    let mut rng = StdRng::seed_from_u64(17);
    luts.set("en", 1);
    luts.set("init", 0);
    luts.set("byte_mode", 0);
    luts.set("byte_lane", 0);
    gates.set("en", 1);
    gates.set("init", 0);
    gates.set("byte_mode", 0);
    gates.set("byte_lane", 0);
    for cycle in 0..100 {
        let word: [u8; 4] = rng.gen();
        luts.set_bytes("data", &word);
        gates.set_bytes("data", &word);
        assert_eq!(luts.get("crc"), gates.get("crc"), "cycle {cycle}");
        assert_eq!(luts.get("fcs_ok"), gates.get("fcs_ok"), "cycle {cycle}");
        luts.step();
        gates.step();
    }
}
