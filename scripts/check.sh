#!/usr/bin/env sh
# Tier-1+ gate: formatting, lints, tests, and netlist static analysis.
# Everything runs offline against the vendored compat/ stand-ins.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build (examples)"
cargo build -q --offline --examples

echo "==> cargo test (workspace)"
cargo test -q --workspace --offline

echo "==> cargo doc (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --workspace --no-deps --offline

echo "==> p5lint (shipped netlists + compositions, timing gate)"
# --deny-warnings with the committed baseline: any new finding at any
# severity fails; --report-timing refreshes results/TIMING_*.json and
# exits 2 if any shipped netlist's worst slack goes negative at the
# 78.125 MHz line clock on the target part.
cargo run -q --release -p p5-lint --bin p5lint --offline -- \
    --strict --deny-warnings --baseline lint.baseline.json --report-timing

echo "==> throughput smoke + perf gate (results/BENCH_throughput.json)"
# The bytes/cycle floors are the shipped numbers: a cycle-model change
# that costs cycles fails here rather than landing silently.  The
# sim-speed floors gate the fused fast path (measured ~2.9 Gbps both
# widths on the reference host; the floors sit far below so shared-CI
# noise cannot flake, yet far above the staged-path ~0.04/0.17 Gbps —
# losing the fused path fails here).  The alloc ceiling holds the
# steady-state datapath at <=1 heap allocation per datagram (measured
# 0: every buffer comes from the recycling pool after warm-up).
cargo run -q --release --offline -p p5-bench --bin throughput_report -- \
    --smoke --min-bpc8 0.9998 --min-bpc32 3.9931 \
    --min-sim8 0.25 --min-sim32 0.75 --max-allocs-per-frame 1

echo "==> gate-sim smoke + perf gate (results/BENCH_gate_sim.json)"
# The compiled 64-lane engine must stay >=10x the scalar walker on the
# 32-bit system aggregate (measured ~300x; 10x leaves noise headroom).
cargo run -q --release --offline -p p5-bench --bin gate_sim_report -- \
    --smoke --min-x64 10

echo "==> trace smoke + overhead gate (results/BENCH_trace.json)"
# The duplex lifecycle trace must match every frame end to end, the
# instrumented-but-disabled device must stay within 3% of the baseline
# bytes/cycle recorded by the throughput step above, and the fleet's
# observability drive path (`run_sampled` with no collector) must stay
# within 3% wall of the plain drive loop on a 256-link fleet.
cargo run -q --release --offline -p p5-bench --bin trace_report -- \
    --smoke --max-overhead-pct 3 --max-fleet-overhead-pct 3

echo "==> obs smoke + live-detection gates (results/BENCH_obs.json)"
# Live observability gates: an actively sampling collector on a
# 256-link fleet must cost <= 25% wall (measured ~0 on the reference
# host; the headroom absorbs shared-CI noise), a seeded BER burst on
# one link must be reported Degraded within the documented detection
# budget (every * (degrade_after + 1) ticks) while the run is still in
# progress — scraped live over real TCP — and the frozen flight
# recorder must capture all four entry kinds around the trigger.
cargo run -q --release --offline -p p5-bench --bin obs_report -- \
    --smoke --max-sampling-overhead-pct 25

echo "==> fault smoke + recovery gates (results/BENCH_fault.json)"
# Chaos gates: zero corrupt deliveries, one-sided drop accounting on
# every injection scenario, re-delineation within the documented bound,
# and renegotiation within the RFC 1661 restart budget.
cargo run -q --release --offline -p p5-bench --bin fault_report -- --smoke

echo "==> runtime smoke + scaling gate (results/BENCH_runtime.json)"
# Carrier-scale fleet gates: the sweep must conserve every frame at
# every link count (shed == rejected == 0 uncongested, delivered ==
# accepted — asserted inside the report), p99 submit->delivery latency
# must stay within 64 ticks on uncongested rows, and on hosts with
# >= 4 cores the best aggregate throughput at >= 64 links must reach
# 2x the single-link row (the gate self-skips below 4 cores, where the
# scaling claim is vacuous).
cargo run -q --release --offline -p p5-bench --bin runtime_report -- \
    --smoke --min-uplift 2.0 --max-p99-ticks 64

echo "==> xport smoke + real-endpoint gates (results/BENCH_xport.json)"
# Real-endpoint gates over actual OS sockets: LCP + IPCP bring-up on a
# TCP loopback socket within 5 s (measured ~1-30 ms; the budget absorbs
# shared-CI thread scheduling), sustained one-way 1500 B throughput of
# >= 0.05 Gbps (measured ~0.2-0.3 Gbps even on a single-CPU host; the
# floor catches the transport path collapsing, not host variance), a
# scripted mid-run sever renegotiated within 5 s, and zero corrupt
# deliveries across every experiment.
cargo run -q --release --offline -p p5-bench --bin xport_report -- \
    --smoke --max-bringup-ms 5000 --min-gbps 0.05 --max-reconnect-ms 5000

echo "==> all checks passed"
