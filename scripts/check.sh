#!/usr/bin/env sh
# Tier-1+ gate: formatting, lints, tests, and netlist static analysis.
# Everything runs offline against the vendored compat/ stand-ins.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build (examples)"
cargo build -q --offline --examples

echo "==> cargo test (workspace)"
cargo test -q --workspace --offline

echo "==> p5lint (shipped netlists)"
cargo run -q -p p5-lint --bin p5lint --offline

echo "==> throughput smoke (results/BENCH_throughput.json)"
cargo run -q --release --offline -p p5-bench --bin throughput_report -- --smoke

echo "==> all checks passed"
