//! MAPOS — the reason the P⁵'s address field is programmable.
//!
//! The paper cites MAPOS (RFC 2171, refs [1][2]) as the system its
//! programmable HDLC address supports: multiple stations on SONET links
//! joined by a frame switch that forwards on the address octet.  This
//! example builds a four-port *learning* MAPOS switch:
//!
//! ```text
//!   station A (addr 03) ──╮
//!   station B (addr 05) ──┼── learning frame switch
//!   station C (addr 07) ──┤   (flood unknown, then unicast)
//!   station D (addr 09) ──╯
//! ```
//!
//! Every port is a full duplex P⁵ link assembled by [`LinkBuilder`] —
//! the station end keeps its MAPOS address filter, the switch end runs
//! promiscuous so the fabric sees every frame regardless of its
//! destination octet.  (An earlier revision of this example hand-wired
//! framer/deframer stages with `stack!`; port devices built through
//! `LinkBuilder` give FCS checking, address filtering and OAM counters
//! for free, and no custom topology remains that would need the
//! escape hatch.)
//!
//! The switch *learns*: MAPOS frames carry only the destination in the
//! HDLC address octet (source association is NSP's job in RFC 2171),
//! so this example prepends one source-address shim octet to each
//! payload — an example convention standing in for NSP, documented
//! here so nobody mistakes it for wire format.  Unknown destinations
//! flood to every other port; once a station has been heard from, its
//! frames go out one port only.  The flood is observable from the
//! innocent stations' `ADDR_MISMATCHES` counters — their P⁵ receivers
//! drop the misaddressed copies in hardware.
//!
//! ```sh
//! cargo run --release --example mapos_switch
//! ```

use std::collections::HashMap;

use p5::core::oam::ctrl;
use p5::ppp::mapos::MaposAddress;
use p5::prelude::*;

/// Staged-pipeline cycles granted per device per pump round — enough
/// for a handful of short frames end to end.
const CYCLES: u64 = 20_000;

/// One switch port: a duplex P⁵ link whose `a` end is the station and
/// whose `b` end is the switch-side device.
struct Port {
    name: &'static str,
    station: MaposAddress,
    link: DuplexLink,
}

impl Port {
    fn new(name: &'static str, port_number: u8) -> Self {
        let station = MaposAddress::unicast(port_number).expect("valid port number");
        let link = LinkBuilder::new()
            .width(DatapathWidth::W32)
            .build_duplex()
            .expect("duplex link");
        let port = Port {
            name,
            station,
            link,
        };
        // Station side filters on its own MAPOS address (+ broadcast).
        let mut bus = port.link.a.oam();
        bus.write(regs::ADDRESS, station.octet() as u32);
        // Switch side must see every destination: promiscuous RX.
        let mut bus = port.link.b.oam();
        let c = bus.read(regs::CTRL);
        bus.write(regs::CTRL, c | ctrl::PROMISCUOUS);
        port
    }

    /// Station transmit: stamp the *destination* into the programmable
    /// address register (as MAPOS firmware does per frame), prepend the
    /// source shim octet, and restore the filter address.
    fn send_to(&mut self, dest: MaposAddress, message: &[u8]) {
        let mut payload = Vec::with_capacity(message.len() + 1);
        payload.push(self.station.octet());
        payload.extend_from_slice(message);
        let mut bus = self.link.a.oam();
        bus.write(regs::ADDRESS, dest.octet() as u32);
        self.link.a.submit(0x0021, payload).expect("queue empty");
        self.link.a.run(CYCLES);
        bus.write(regs::ADDRESS, self.station.octet() as u32);
    }

    /// Misaddressed frames the station's receiver filtered out — the
    /// visible footprint of a flood.
    fn address_mismatches(&self) -> u32 {
        self.link.a.oam().read(regs::ADDR_MISMATCHES)
    }
}

/// The fabric: a learned station-address → port map plus flood/forward
/// accounting.
#[derive(Default)]
struct Fabric {
    table: HashMap<u8, usize>,
    floods: u32,
    unicasts: u32,
}

impl Fabric {
    /// Service every port: collect frames off the switch-side devices,
    /// learn sources, and re-transmit towards their destinations.
    fn service(&mut self, ports: &mut [Port]) {
        // Collect first, then transmit — a forwarded frame must not be
        // re-collected within the same service pass.
        let mut pending: Vec<(usize, ReceivedFrame)> = Vec::new();
        for (i, port) in ports.iter_mut().enumerate() {
            for frame in port.link.b.take_received() {
                pending.push((i, frame));
            }
        }
        for (from, frame) in pending {
            let Some(&src) = frame.payload.first() else {
                continue; // shim-less frame: nothing to learn or route
            };
            self.table.insert(src, from);
            let dest = frame.address;
            let out: Vec<usize> = match self.table.get(&dest) {
                Some(&p) if dest != MaposAddress::BROADCAST.octet() => vec![p],
                // Broadcast, or a station nobody has heard from: flood.
                _ => (0..ports.len()).filter(|&p| p != from).collect(),
            };
            if out.len() == 1 {
                self.unicasts += 1;
            } else {
                self.floods += 1;
            }
            for p in out {
                let port = &mut ports[p];
                // Egress keeps the original destination octet so the
                // station-side address filter has the final say.
                let mut bus = port.link.b.oam();
                bus.write(regs::ADDRESS, dest as u32);
                port.link
                    .b
                    .submit(frame.protocol, frame.payload.clone())
                    .expect("switch egress queue empty");
                port.link.b.run(CYCLES);
            }
        }
    }
}

/// One full plant rotation: clock every device, move wire bytes both
/// ways on every link, then let the fabric switch what arrived.
fn pump(ports: &mut [Port], fabric: &mut Fabric, rounds: usize) {
    for _ in 0..rounds {
        for port in ports.iter_mut() {
            port.link.a.run(CYCLES);
            port.link.b.run(CYCLES);
            port.link.exchange();
            port.link.b.run(CYCLES);
        }
        fabric.service(ports);
        // Carry the fabric's egress back down to the stations.
        for port in ports.iter_mut() {
            port.link.exchange();
            port.link.a.run(CYCLES);
        }
    }
}

fn collect(port: &mut Port) -> Vec<(u8, String)> {
    port.link
        .a
        .take_received()
        .into_iter()
        .map(|f| {
            let src = f.payload.first().copied().unwrap_or(0);
            (src, String::from_utf8_lossy(&f.payload[1..]).into_owned())
        })
        .collect()
}

fn main() {
    let mut ports = [
        Port::new("A", 1), // addr 0x03
        Port::new("B", 2), // addr 0x05
        Port::new("C", 3), // addr 0x07
        Port::new("D", 4), // addr 0x09
    ];
    let mut fabric = Fabric::default();
    let (a_addr, b_addr) = (ports[0].station, ports[1].station);

    // 1. A → B while the table is empty: the switch must flood, and
    //    the flood's rejected copies land in C's and D's mismatch
    //    counters.
    ports[0].send_to(b_addr, b"hello B, from A");
    pump(&mut ports, &mut fabric, 4);
    assert_eq!(fabric.floods, 1, "unknown destination must flood");
    assert_eq!(collect(&mut ports[1]).len(), 1, "B gets A's hello");
    assert_eq!(ports[2].address_mismatches(), 1, "C saw the flood");
    assert_eq!(ports[3].address_mismatches(), 1, "D saw the flood");

    // 2. B replies: A was learned from step 1, so this goes out one
    //    port, and the switch learns B.
    ports[1].send_to(a_addr, b"hello A, from B");
    pump(&mut ports, &mut fabric, 4);
    assert_eq!(fabric.unicasts, 1, "learned destination must not flood");
    assert_eq!(collect(&mut ports[0]).len(), 1, "A gets B's reply");

    // 3. A → B again: both learned now — pure unicast, no new
    //    mismatches anywhere.
    ports[0].send_to(b_addr, b"again, B");
    pump(&mut ports, &mut fabric, 4);
    assert_eq!(fabric.unicasts, 2);
    assert_eq!(collect(&mut ports[1]).len(), 1);
    assert_eq!(ports[2].address_mismatches(), 1, "no new flood reached C");
    assert_eq!(ports[3].address_mismatches(), 1, "no new flood reached D");

    // 4. C broadcasts: reaches every other station through their own
    //    address filters (0xFF is always accepted).
    ports[2].send_to(MaposAddress::BROADCAST, b"hear ye, all stations");
    pump(&mut ports, &mut fabric, 4);
    for i in [0usize, 1, 3] {
        let got = collect(&mut ports[i]);
        assert_eq!(got.len(), 1, "{} missed the broadcast", ports[i].name);
        assert_eq!(got[0].0, ports[2].station.octet());
    }

    println!(
        "learning switch: {} flood(s), {} unicast forward(s), table size {}",
        fabric.floods,
        fabric.unicasts,
        fabric.table.len()
    );

    // Per-station health table from the same OAM counters the live
    // collector scores (DESIGN.md §17).  Address-filter drops are the
    // switch working as designed, not line errors, so they are shown
    // in their own column and excluded from the verdict.
    let policy = HealthPolicy::default();
    println!("\nstation health:");
    println!("  port  addr   state     rx_frames  line_errors  filtered");
    for port in &ports {
        let hc = port.link.a.health_counters();
        let filtered = u64::from(port.address_mismatches());
        let line_errors = hc.rx_errors - filtered;
        let state = policy.snap_judgment(&p5::obs::HealthSample {
            delivered: hc.rx_frames,
            offered: hc.rx_frames + line_errors,
            errors: line_errors,
            ..Default::default()
        });
        println!(
            "  {:>4}  {:#04X}  {:<8}  {:>9}  {:>11}  {:>8}",
            port.name,
            port.station.octet(),
            state.name(),
            hc.rx_frames,
            line_errors,
            filtered
        );
        assert_eq!(state, HealthState::Healthy, "clean fabric, healthy links");
    }

    // Top-3 stall attributions across every device in the plant (the
    // bottleneck finder, not a raw snapshot dump).
    let mut stalls: Vec<(String, u64, u64)> = Vec::new();
    for port in &ports {
        for (end, dev) in [("station", &port.link.a.p5), ("switch", &port.link.b.p5)] {
            for snap in [dev.tx.snapshot(), dev.rx.snapshot()] {
                stalls.push((
                    format!("{} {end} {}", port.name, snap.scope),
                    snap.get("stall_cycles").unwrap_or(0),
                    snap.get("cycles").unwrap_or(0),
                ));
            }
        }
    }
    stalls.sort_by_key(|(_, s, _)| std::cmp::Reverse(*s));
    println!("\ntop stall attributions:");
    for (who, stalled, cycles) in stalls.iter().take(3) {
        println!(
            "  {who:<20}: {stalled:>9} stalled cycles of {cycles:>9} ({:.1}%)",
            100.0 * *stalled as f64 / (*cycles).max(1) as f64
        );
    }
    println!("\nflood-then-learn on the programmable address octet works.");
}
