//! MAPOS — the reason the P⁵'s address field is programmable.
//!
//! The paper cites MAPOS (RFC 2171, refs [1][2]) as the system its
//! programmable HDLC address supports: multiple stations on SONET links
//! joined by a frame switch that forwards on the address octet.  This
//! example builds a three-port MAPOS switch out of three P⁵ pairs:
//!
//! ```text
//!   station A (addr 03) ──╮
//!   station B (addr 05) ──┼── frame switch (address-routed)
//!   station C (addr 07) ──╯
//! ```
//!
//! Unicast frames reach exactly their addressee; broadcast (0xFF)
//! reaches everyone else.
//!
//! ```sh
//! cargo run --release --example mapos_switch
//! ```

use p5::hdlc::{DeframerStage, FramerConfig, FramerStage};
use p5::ppp::mapos::MaposAddress;
use p5::prelude::*;

/// The switch: deframes each ingress stream, reads the address octet,
/// re-frames onto the egress port(s).  (A real MAPOS switch does this
/// in hardware with the same P⁵-style datapath per port.)  Each port is
/// a pair of stream stages — the same `DeframerStage`/`FramerStage` the
/// golden-model test harnesses compose — joined by the switching fabric.
/// A three-port switch is not a point-to-point link, so this is the one
/// example that assembles stages by hand: the documented escape hatch
/// below `LinkBuilder` (DESIGN.md §14).
struct Switch {
    ports: Vec<SwitchPort>,
}

struct SwitchPort {
    station: MaposAddress,
    deframer: DeframerStage,
    framer: FramerStage,
    egress: WireBuf,
}

impl Switch {
    fn new(stations: &[MaposAddress]) -> Self {
        Self {
            ports: stations
                .iter()
                .map(|&station| SwitchPort {
                    station,
                    deframer: DeframerStage::new(DeframerConfig::default()),
                    framer: FramerStage::new(FramerConfig::default()),
                    egress: WireBuf::new(),
                })
                .collect(),
        }
    }

    /// Carry ingress wire bytes from port `from`, switching complete
    /// frames onto the destination port's egress stream.
    fn ingress(&mut self, from: usize, wire: &[u8]) {
        let mut line = WireBuf::new();
        line.push_slice(wire);
        self.ports[from].deframer.offer(&mut line);
        let mut bodies = WireBuf::new();
        self.ports[from].deframer.drain(&mut bodies);
        let mut body = Vec::new();
        while bodies.pop_frame_into(&mut body).is_some() {
            let Some(&dest_octet) = body.first() else {
                continue;
            };
            let Ok(dest) = MaposAddress::new(dest_octet) else {
                continue;
            };
            for i in 0..self.ports.len() {
                if i == from {
                    continue;
                }
                if self.ports[i].station.accepts(dest) {
                    let port = &mut self.ports[i];
                    let mut forward = WireBuf::new();
                    forward.push_frame(&body);
                    port.framer.offer(&mut forward);
                    port.framer.drain(&mut port.egress);
                }
            }
        }
    }

    fn egress(&mut self, port: usize) -> Vec<u8> {
        self.ports[port].egress.take_vec()
    }
}

struct Station {
    name: &'static str,
    addr: MaposAddress,
    p5: P5,
}

impl Station {
    fn new(name: &'static str, port: u8) -> Self {
        let addr = MaposAddress::unicast(port).expect("valid port");
        let p5 = P5::new(DatapathWidth::W32);
        let mut bus = Oam::new(p5.oam.clone());
        bus.write(regs::ADDRESS, addr.octet() as u32);
        Self { name, addr, p5 }
    }

    /// Send a datagram to another MAPOS address: the switch routes on
    /// the frame's (programmable) address octet, so the transmitter
    /// stamps the *destination* address.
    fn send_to(&mut self, dest: MaposAddress, payload: &[u8]) {
        // Temporarily stamp the destination into the address register
        // (real firmware writes the per-frame destination the same way).
        let mut bus = Oam::new(self.p5.oam.clone());
        bus.write(regs::ADDRESS, dest.octet() as u32);
        self.p5.submit(0x0021, payload.to_vec()).unwrap();
        self.p5.run_until_idle(1_000_000);
        bus.write(regs::ADDRESS, self.addr.octet() as u32);
    }
}

fn main() {
    let mut a = Station::new("A", 1); // addr 0x03
    let mut b = Station::new("B", 2); // addr 0x05
    let mut c = Station::new("C", 3); // addr 0x07
    let mut sw = Switch::new(&[a.addr, b.addr, c.addr]);

    // A → B unicast, C → A unicast, B → broadcast.
    a.send_to(b.addr, b"hello B, from A");
    c.send_to(a.addr, b"hello A, from C");
    b.send_to(MaposAddress::BROADCAST, b"hear ye, all stations");

    // Carry everything through the switch.
    sw.ingress(0, &a.p5.take_wire_out());
    sw.ingress(1, &b.p5.take_wire_out());
    sw.ingress(2, &c.p5.take_wire_out());

    // Deliver egress streams into each station's receiver.
    for (i, st) in [&mut a, &mut b, &mut c].into_iter().enumerate() {
        let wire = sw.egress(i);
        st.p5.put_wire_in(&wire);
        st.p5.run_until_idle(1_000_000);
    }

    for st in [&mut a, &mut b, &mut c] {
        let frames = st.p5.take_received();
        for f in &frames {
            println!(
                "[{}] got {:?} (to addr {:#04X})",
                st.name,
                String::from_utf8_lossy(&f.payload),
                f.address
            );
        }
        // The P5 accepts its own station address plus the all-stations
        // broadcast 0xFF, so:
        match st.name {
            "A" => assert_eq!(frames.len(), 2, "A: C's unicast + broadcast"),
            "B" => assert_eq!(frames.len(), 1, "B: A's unicast"),
            "C" => assert_eq!(frames.len(), 1, "C: the broadcast"),
            _ => {}
        }
    }
    println!("switching on the programmable address octet works.");
}
