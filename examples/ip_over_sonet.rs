//! Gigabit IP over SDH/SONET — the paper's title scenario, end to end:
//!
//!   IP datagrams → 32-bit P⁵ transmitter (cycle accurate)
//!     → x⁴³+1 payload scrambler → STM-16 framing (A1/A2, B1/B2, POH)
//!     → bit-error channel → frame delineation + descrambling
//!     → 32-bit P⁵ receiver → shared memory,
//!
//! with the Protocol OAM counters read out over the register bus at the
//! end, exactly as a host microprocessor would.  The whole assembly —
//! idle-fill mode, line-rate clocking, the seeded error channel — comes
//! from [`LinkBuilder`] (DESIGN.md §14).
//!
//! ```sh
//! cargo run --release --example ip_over_sonet
//! ```

use p5::prelude::*;

fn main() {
    // An OC-48 path with a 1e-6 bit error rate (a poor-quality section).
    // The builder switches the transmitter to continuous (idle-fill)
    // mode and clocks one SPE of wire bytes per 125 µs frame, exactly as
    // the hardware is driven.
    let plan = FaultSpec::clean()
        .ber(1e-6)
        .compile(42)
        .expect("valid fault spec");
    let mut link = LinkBuilder::new()
        .width(DatapathWidth::W32)
        .sonet(StmLevel::Stm16)
        .fault(plan)
        .build()
        .expect("link assembles");

    // Offer an IMIX of IP datagrams.
    let sizes = p5_bench::imix_sizes(300, 7);
    let mut sent = Vec::new();
    for (i, len) in sizes.iter().enumerate() {
        let d = p5_bench::ip_like_datagram(*len, i as u64);
        link.send(0x0021, &d);
        sent.push(d);
    }
    link.run(10_000).expect("link did not drain");

    // Compare deliveries (in order; corrupted frames never surface).
    let got: Vec<Vec<u8>> = link.deliveries().into_iter().map(|(_, p)| p).collect();
    let mut delivered = 0usize;
    let mut gi = 0usize;
    for d in &sent {
        if gi < got.len() && &got[gi] == d {
            delivered += 1;
            gi += 1;
        }
    }
    for (name, st) in link.stage_stats() {
        println!(
            "stage {name:>12}: cycles={} words_in={} bytes_out={} stalls={} rejects={}",
            st.cycles, st.words_in, st.bytes_out, st.stall_cycles, st.rejects
        );
    }

    // Where did cycles go?  The top three stall attributions, not the
    // full per-stage snapshot dump (`link.stall_table()` has the whole
    // boundary table when needed — DESIGN.md §13).
    let mut stages = link.stage_stats();
    stages.sort_by_key(|(_, st)| std::cmp::Reverse(st.stall_cycles));
    println!("\ntop stall attributions:");
    for (name, st) in stages.iter().take(3) {
        println!(
            "  {name:>12}: {:>7} stalled cycles of {:>8} ({:.1}%)",
            st.stall_cycles,
            st.cycles,
            100.0 * st.stall_cycles as f64 / st.cycles.max(1) as f64
        );
    }

    // The link's health verdict, from the same OAM counters the live
    // collector scores (DESIGN.md §17) — here as a one-shot end-of-run
    // judgment over the whole run as a single window.
    let hc = link.health_counters();
    let verdict = HealthPolicy::default().snap_judgment(&p5::obs::HealthSample {
        delivered: hc.rx_frames,
        offered: sent.len() as u64,
        errors: hc.rx_errors,
        ..Default::default()
    });
    println!("\nlink health:");
    println!("  link  state     rx_frames  errors  tx_rejects");
    println!(
        "  {:>4}  {:<8}  {:>9}  {:>6}  {:>10}",
        0,
        verdict.name(),
        hc.rx_frames,
        hc.rx_errors,
        hc.tx_rejects
    );

    // Read the OAM over the bus, as firmware would.
    let bus = link.rx_oam();
    println!(
        "OAM: rx_frames={} fcs_errors={} aborts={} giants={} runts={}",
        bus.read(regs::RX_FRAMES),
        bus.read(regs::FCS_ERRORS),
        bus.read(regs::ABORTS),
        bus.read(regs::GIANTS),
        bus.read(regs::RUNTS),
    );
    println!(
        "datagrams: sent={} delivered-in-order={} corrupted-and-dropped={}",
        sent.len(),
        delivered,
        bus.read(regs::FCS_ERRORS),
    );
    // Every datagram is either delivered intact or shows up in an error
    // counter.  (A corrupted flag can merge two frames into one FCS
    // error, or split one frame into two — hence the ±few tolerance.)
    let accounted = delivered as i64 + link.rx_errors() as i64;
    assert!(
        (accounted - sent.len() as i64).abs() <= 4,
        "accounting hole: {accounted} vs {} sent",
        sent.len()
    );
    assert!(
        delivered > sent.len() * 8 / 10,
        "most frames survive 1e-6 BER"
    );
    println!("end-to-end integrity holds: no silent corruption.");
}
