//! Gigabit IP over SDH/SONET — the paper's title scenario, end to end:
//!
//!   IP datagrams → 32-bit P⁵ transmitter (cycle accurate)
//!     → x⁴³+1 payload scrambler → STM-16 framing (A1/A2, B1/B2, POH)
//!     → bit-error channel → frame delineation + descrambling
//!     → 32-bit P⁵ receiver → shared memory,
//!
//! with the Protocol OAM counters read out over the register bus at the
//! end, exactly as a host microprocessor would.  The whole assembly —
//! idle-fill mode, line-rate clocking, the seeded error channel — comes
//! from [`LinkBuilder`] (DESIGN.md §14).
//!
//! ```sh
//! cargo run --release --example ip_over_sonet
//! ```

use p5::prelude::*;

fn main() {
    // An OC-48 path with a 1e-6 bit error rate (a poor-quality section).
    // The builder switches the transmitter to continuous (idle-fill)
    // mode and clocks one SPE of wire bytes per 125 µs frame, exactly as
    // the hardware is driven.
    let plan = FaultSpec::clean()
        .ber(1e-6)
        .compile(42)
        .expect("valid fault spec");
    let mut link = LinkBuilder::new()
        .width(DatapathWidth::W32)
        .sonet(StmLevel::Stm16)
        .fault(plan)
        .build()
        .expect("link assembles");

    // Offer an IMIX of IP datagrams.
    let sizes = p5_bench::imix_sizes(300, 7);
    let mut sent = Vec::new();
    for (i, len) in sizes.iter().enumerate() {
        let d = p5_bench::ip_like_datagram(*len, i as u64);
        link.send(0x0021, &d);
        sent.push(d);
    }
    link.run(10_000).expect("link did not drain");

    // Compare deliveries (in order; corrupted frames never surface).
    let got: Vec<Vec<u8>> = link.deliveries().into_iter().map(|(_, p)| p).collect();
    let mut delivered = 0usize;
    let mut gi = 0usize;
    for d in &sent {
        if gi < got.len() && &got[gi] == d {
            delivered += 1;
            gi += 1;
        }
    }
    for (name, st) in link.stage_stats() {
        println!(
            "stage {name:>12}: cycles={} words_in={} bytes_out={} stalls={} rejects={}",
            st.cycles, st.words_in, st.bytes_out, st.stall_cycles, st.rejects
        );
    }
    // Stall attribution across the stack, then the full metrics
    // snapshot of every stage (DESIGN.md §13).
    println!("\n{}", link.stall_table());
    println!(
        "final metrics snapshot:\n{}",
        render_table(&link.snapshots())
    );

    // Read the OAM over the bus, as firmware would.
    let bus = link.rx_oam();
    println!(
        "OAM: rx_frames={} fcs_errors={} aborts={} giants={} runts={}",
        bus.read(regs::RX_FRAMES),
        bus.read(regs::FCS_ERRORS),
        bus.read(regs::ABORTS),
        bus.read(regs::GIANTS),
        bus.read(regs::RUNTS),
    );
    println!(
        "datagrams: sent={} delivered-in-order={} corrupted-and-dropped={}",
        sent.len(),
        delivered,
        bus.read(regs::FCS_ERRORS),
    );
    // Every datagram is either delivered intact or shows up in an error
    // counter.  (A corrupted flag can merge two frames into one FCS
    // error, or split one frame into two — hence the ±few tolerance.)
    let accounted = delivered as i64 + link.rx_errors() as i64;
    assert!(
        (accounted - sent.len() as i64).abs() <= 4,
        "accounting hole: {accounted} vs {} sent",
        sent.len()
    );
    assert!(
        delivered > sent.len() * 8 / 10,
        "most frames survive 1e-6 BER"
    );
    println!("end-to-end integrity holds: no silent corruption.");
}
