//! Gigabit IP over SDH/SONET — the paper's title scenario, end to end:
//!
//!   IP datagrams → 32-bit P⁵ transmitter (cycle accurate)
//!     → x⁴³+1 payload scrambler → STM-16 framing (A1/A2, B1/B2, POH)
//!     → bit-error channel → frame delineation + descrambling
//!     → 32-bit P⁵ receiver → shared memory,
//!
//! with the Protocol OAM counters read out over the register bus at the
//! end, exactly as a host microprocessor would.
//!
//! ```sh
//! cargo run --release --example ip_over_sonet
//! ```

use p5_core::oam::{regs, MmioBus, Oam};
use p5_core::{decap, encap, DatapathWidth, RxStage, TxStage, P5};
use p5_sonet::{BitErrorChannel, OcPath, OcPathStage, StmLevel};
use p5_stream::stack;

fn main() {
    let mut tx_p5 = P5::new(DatapathWidth::W32);
    // Continuous line mode: the escape unit emits flag fill when the
    // transmit memory runs dry, exactly as the hardware does — so the
    // SONET framer never pads mid-HDLC-frame.
    tx_p5.tx.escape.idle_fill = true;
    let rx_p5 = P5::new(DatapathWidth::W32);
    let rx_oam = rx_p5.oam.clone();

    // Drive at line rate: one SPE of wire bytes per 125 µs frame — the
    // TxStage burst is the cycles-per-frame budget, the OC path advances
    // one frame per sweep.
    let cycles_per_frame = StmLevel::Stm16.payload_per_frame().div_ceil(4) as u64 + 8;
    // An OC-48 path with a 1e-6 bit error rate (a poor-quality section).
    let path = OcPath::new(StmLevel::Stm16, BitErrorChannel::new(1e-6, 1, 42));
    let mut s = stack![
        TxStage::with_burst(tx_p5, cycles_per_frame),
        OcPathStage::new(path),
        RxStage::with_burst(rx_p5, 2 * cycles_per_frame),
    ];

    // Offer an IMIX of IP datagrams.
    let sizes = p5_bench::imix_sizes(300, 7);
    let mut sent = Vec::new();
    for (i, len) in sizes.iter().enumerate() {
        let d = p5_bench::ip_like_datagram(*len, i as u64);
        encap(0x0021, &d, s.input());
        sent.push(d);
    }

    assert!(s.run_until_idle(10_000), "did not drain");
    // Flush the SPE backlog plus a couple of frames of flag fill.
    s.finish();

    // Compare deliveries.
    let mut got = Vec::new();
    let mut frame = Vec::new();
    while s.output().pop_frame_into(&mut frame).is_some() {
        let (_proto, payload) = decap(&frame).expect("frames carry a protocol");
        got.push(payload.to_vec());
    }
    let mut delivered = 0usize;
    let mut gi = 0usize;
    for d in &sent {
        if gi < got.len() && &got[gi] == d {
            delivered += 1;
            gi += 1;
        }
    }
    for (name, st) in s.stage_stats() {
        println!(
            "stage {name:>12}: cycles={} words_in={} bytes_out={} stalls={} rejects={}",
            st.cycles, st.words_in, st.bytes_out, st.stall_cycles, st.rejects
        );
    }
    // Stall attribution across the stack, then the full metrics
    // snapshot of every stage (DESIGN.md §13).
    println!("\n{}", s.stall_table());
    println!(
        "final metrics snapshot:\n{}",
        p5_stream::render_table(&s.snapshots())
    );

    // Read the OAM over the bus, as firmware would.
    let bus = Oam::new(rx_oam);
    println!(
        "OAM: rx_frames={} fcs_errors={} aborts={} giants={} runts={}",
        bus.read(regs::RX_FRAMES),
        bus.read(regs::FCS_ERRORS),
        bus.read(regs::ABORTS),
        bus.read(regs::GIANTS),
        bus.read(regs::RUNTS),
    );
    println!(
        "datagrams: sent={} delivered-in-order={} corrupted-and-dropped={}",
        sent.len(),
        delivered,
        bus.read(regs::FCS_ERRORS),
    );
    // Every datagram is either delivered intact or shows up in an error
    // counter.  (A corrupted flag can merge two frames into one FCS
    // error, or split one frame into two — hence the ±few tolerance.)
    let errors = bus.read(regs::FCS_ERRORS)
        + bus.read(regs::ABORTS)
        + bus.read(regs::RUNTS)
        + bus.read(regs::GIANTS)
        + bus.read(regs::HEADER_ERRORS)
        + bus.read(regs::ADDR_MISMATCHES);
    let accounted = delivered as i64 + errors as i64;
    assert!(
        (accounted - sent.len() as i64).abs() <= 4,
        "accounting hole: {accounted} vs {} sent",
        sent.len()
    );
    assert!(
        delivered > sent.len() * 8 / 10,
        "most frames survive 1e-6 BER"
    );
    println!("end-to-end integrity holds: no silent corruption.");
}
