//! LCP + IPCP link bring-up between two PPP peers over the simulated
//! link, in MAPOS-addressed mode — exercising the "programmable" parts
//! of the P⁵: the LCP automaton (RFC 1661 §4), option negotiation, and
//! the programmable HDLC address register (RFC 2171).
//!
//! The two devices and the wire between them come from
//! [`LinkBuilder::build_duplex`]; each peer runs a [`Session`] (LCP +
//! IPCP behind one demultiplexer).  The finale bounces the link with
//! [`Session::renegotiate`] and shows it re-open inside the RFC 1661
//! restart budget.
//!
//! ```sh
//! cargo run --release --example lcp_negotiation
//! ```

use p5::ppp::mapos::MaposAddress;
use p5::ppp::session::{Session, SessionEvent};
use p5::ppp::NegotiationProfile;
use p5::prelude::*;

/// One round: flush the session's control packets into the P⁵, clock
/// it, and dispatch received frames back into the session.
fn poll(name: &str, sess: &mut Session, end: &mut LinkEnd, now: u64) {
    sess.tick(now);
    for (proto, info) in sess.poll_output() {
        end.submit(proto, info).unwrap();
    }
    end.run(512);
    for frame in end.take_received() {
        sess.receive(frame.protocol, &frame.payload);
    }
    for ev in sess.poll_events() {
        println!("[{name}] {ev:?}");
    }
}

fn main() {
    // Restart period must exceed the link round-trip (a few poll ticks
    // here), or stale retransmissions force renegotiation from Opened —
    // the same rule real stacks follow (seconds of timer vs.
    // milliseconds of RTT).
    let mut a = Session::with_profile(
        &NegotiationProfile::new()
            .magic(0x1111_1111)
            .ip([10, 0, 0, 1])
            .restart_period(10),
    );
    let mut b = Session::with_profile(
        &NegotiationProfile::new()
            .magic(0x2222_2222)
            .ip([10, 0, 0, 2])
            .restart_period(10),
    );

    let mut link = LinkBuilder::new()
        .width(DatapathWidth::W32)
        .build_duplex()
        .expect("clean duplex link builds");
    // Program the MAPOS station address into each OAM, as firmware
    // would over the register bus.
    let addr = MaposAddress::unicast(1).expect("valid MAPOS port");
    link.a.oam().write(regs::ADDRESS, addr.octet() as u32);
    link.b.oam().write(regs::ADDRESS, addr.octet() as u32);

    a.start();
    b.start();
    for now in 0..200u64 {
        poll("A", &mut a, &mut link.a, now);
        poll("B", &mut b, &mut link.b, now);
        link.exchange();
        if a.is_network_up() && b.is_network_up() {
            break;
        }
    }
    assert!(a.lcp.is_opened() && b.lcp.is_opened(), "LCP must open");
    assert!(a.ipcp.is_opened() && b.ipcp.is_opened(), "IPCP must open");
    println!(
        "\nlink up: A={:?} (peer MRU {}), B={:?}",
        a.ipcp.negotiator.our_addr(),
        a.lcp.negotiator.peer_mru(),
        b.ipcp.negotiator.our_addr(),
    );
    println!(
        "A sees peer IP {:?}; B sees peer IP {:?}",
        a.ipcp.negotiator.peer_addr(),
        b.ipcp.negotiator.peer_addr()
    );

    // Send one IP datagram over the negotiated link as proof.
    a.send_datagram(b"ping over negotiated link".to_vec());
    let mut ponged = false;
    for now in 200..260 {
        poll("A", &mut a, &mut link.a, now);
        sess_poll_datagram(&mut b, &mut link.b, now, &mut ponged);
        link.exchange();
    }
    assert!(ponged, "datagram must arrive over the negotiated link");

    // A link-quality trip (e.g. an LQR policy, DESIGN.md §14) bounces
    // the lower layer: LCP renegotiates and must re-open within the
    // restart budget.
    let budget = 2 * a.lcp.config().restart_budget_ticks();
    println!("\nrenegotiating (budget {budget} ticks)...");
    a.renegotiate();
    let mut reopened = None;
    for now in 300..300 + budget {
        poll("A", &mut a, &mut link.a, now);
        poll("B", &mut b, &mut link.b, now);
        link.exchange();
        if a.is_network_up() && b.is_network_up() {
            reopened = Some(now - 300);
            break;
        }
    }
    let ticks = reopened.expect("renegotiation must re-open the link");
    println!("done: LCP negotiated, data flowed, renegotiated in {ticks} ticks.");
}

/// Poll B while watching for the proof datagram.
fn sess_poll_datagram(sess: &mut Session, end: &mut LinkEnd, now: u64, seen: &mut bool) {
    sess.tick(now);
    for (proto, info) in sess.poll_output() {
        end.submit(proto, info).unwrap();
    }
    end.run(512);
    for frame in end.take_received() {
        sess.receive(frame.protocol, &frame.payload);
    }
    for ev in sess.poll_events() {
        if let SessionEvent::Datagram(d) = &ev {
            println!("[B] got datagram: {:?}", String::from_utf8_lossy(d));
            *seen = true;
        } else {
            println!("[B] {ev:?}");
        }
    }
}
