//! LCP + IPCP link bring-up between two PPP peers over the simulated
//! link, in MAPOS-addressed mode — exercising the "programmable" parts
//! of the P⁵: the LCP automaton (RFC 1661 §4), option negotiation, and
//! the programmable HDLC address register (RFC 2171).
//!
//! ```sh
//! cargo run --release --example lcp_negotiation
//! ```

use p5_core::oam::{regs, MmioBus, Oam};
use p5_core::{DatapathWidth, P5};
use p5_ppp::endpoint::{Endpoint, EndpointConfig, LayerEvent};
use p5_ppp::ipcp::IpcpNegotiator;
use p5_ppp::lcp_negotiator::LcpNegotiator;
use p5_ppp::mapos::MaposAddress;
use p5_ppp::protocol::Protocol;

struct Peer {
    name: &'static str,
    p5: P5,
    lcp: Endpoint<LcpNegotiator>,
    ipcp: Endpoint<IpcpNegotiator>,
    lcp_up: bool,
}

impl Peer {
    fn new(name: &'static str, addr: MaposAddress, magic: u32, ip: [u8; 4]) -> Self {
        let p5 = P5::new(DatapathWidth::W32);
        // Program the MAPOS station address into the OAM, as firmware
        // would over the register bus.
        let mut bus = Oam::new(p5.oam.clone());
        bus.write(regs::ADDRESS, addr.octet() as u32);
        Self {
            name,
            p5,
            // Restart period must exceed the link round-trip (a few poll
            // ticks here), or stale retransmissions force renegotiation
            // from Opened — the same rule real stacks follow (seconds of
            // timer vs. milliseconds of RTT).
            lcp: Endpoint::new(
                LcpNegotiator::new(1500, magic),
                EndpointConfig {
                    restart_period: 10,
                    ..EndpointConfig::default()
                },
            ),
            ipcp: Endpoint::new(
                IpcpNegotiator::new(ip),
                EndpointConfig {
                    restart_period: 10,
                    ..EndpointConfig::default()
                },
            ),
            lcp_up: false,
        }
    }

    fn start(&mut self) {
        self.lcp.open();
        self.lcp.lower_up(); // PHY is up
        self.ipcp.open();
    }

    /// One round: flush control-protocol packets into the P⁵, clock it,
    /// and dispatch received frames back into the endpoints.
    fn poll(&mut self, now: u64) {
        self.lcp.tick(now);
        self.ipcp.tick(now);
        for (proto, packet) in self.lcp.poll_output() {
            self.p5.submit(proto.number(), packet.to_bytes()).unwrap();
        }
        for (proto, packet) in self.ipcp.poll_output() {
            self.p5.submit(proto.number(), packet.to_bytes()).unwrap();
        }
        for ev in self.lcp.poll_layer_events() {
            println!("[{}] LCP {:?}", self.name, ev);
            if ev == LayerEvent::Up {
                self.lcp_up = true;
                self.ipcp.lower_up(); // NCP's lower layer is LCP
            }
            if ev == LayerEvent::Down {
                self.lcp_up = false;
                self.ipcp.lower_down();
            }
        }
        for ev in self.ipcp.poll_layer_events() {
            println!("[{}] IPCP {:?}", self.name, ev);
        }
        for _ in 0..512 {
            self.p5.clock();
        }
        for frame in self.p5.take_received() {
            match Protocol::from_number(frame.protocol) {
                Protocol::Lcp => self.lcp.receive(&frame.payload),
                Protocol::Ipcp => {
                    if self.lcp_up {
                        self.ipcp.receive(&frame.payload)
                    }
                }
                other => println!("[{}] data frame {:?}", self.name, other),
            }
        }
    }
}

fn main() {
    let addr = MaposAddress::unicast(1).expect("valid MAPOS port");
    let mut a = Peer::new("A", addr, 0x1111_1111, [10, 0, 0, 1]);
    let mut b = Peer::new("B", addr, 0x2222_2222, [10, 0, 0, 2]);
    a.start();
    b.start();

    for now in 0..200u64 {
        a.poll(now);
        b.poll(now);
        // Ferry wire bytes.
        let w = a.p5.take_wire_out();
        b.p5.put_wire_in(&w);
        let w = b.p5.take_wire_out();
        a.p5.put_wire_in(&w);
        if a.ipcp.is_opened() && b.ipcp.is_opened() {
            break;
        }
    }

    assert!(a.lcp.is_opened() && b.lcp.is_opened(), "LCP must open");
    assert!(a.ipcp.is_opened() && b.ipcp.is_opened(), "IPCP must open");
    println!(
        "\nlink up: A={:?} (peer MRU {}), B={:?}",
        a.ipcp.negotiator.our_addr(),
        a.lcp.negotiator.peer_mru(),
        b.ipcp.negotiator.our_addr(),
    );
    println!(
        "A sees peer IP {:?}; B sees peer IP {:?}",
        a.ipcp.negotiator.peer_addr(),
        b.ipcp.negotiator.peer_addr()
    );

    // Send one IP datagram over the negotiated link as proof.
    a.p5.submit(
        Protocol::Ipv4.number(),
        b"ping over negotiated link".to_vec(),
    )
    .unwrap();
    for now in 200..260 {
        a.poll(now);
        b.poll(now);
        let w = a.p5.take_wire_out();
        b.p5.put_wire_in(&w);
        let w = b.p5.take_wire_out();
        a.p5.put_wire_in(&w);
    }
    println!("done: LCP negotiated, IPCP assigned addresses, data flowed.");
}
