//! Quickstart: encode one IP datagram into a PPP frame, push it through
//! the cycle-accurate 32-bit P⁵, and decode it on the other side — the
//! two devices joined by the stream layer's `Chain` combinator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use p5_core::{
    decap, encap, render_table, Chain, DatapathWidth, Observable, RxStage, StreamStage, TxStage,
    WireBuf, WordStream, P5,
};

fn main() {
    // Two P⁵ devices wired back to back (Figure 2, both directions),
    // composed as transmit-stage → receive-stage.  `Chain` is static, so
    // the devices stay reachable for the counter read-out at the end.
    let left = P5::new(DatapathWidth::W32);
    let right = P5::new(DatapathWidth::W32);
    let mut link = Chain::new(TxStage::new(left), RxStage::new(right));

    // A datagram with bytes that need escaping (the paper's example
    // sequence 31 33 7E 96 is in there).
    let datagram = vec![0x31, 0x33, 0x7E, 0x96, 0x7D, 0x00, 0x42];
    println!("datagram:   {:02X?}", datagram);

    let mut input = WireBuf::new();
    let mut output = WireBuf::new();
    encap(0x0021, &datagram, &mut input);

    // Offer the frame and sweep until both devices drain; wire bytes
    // shuttle across the chain's internal boundary buffer.
    let mut guard = 0;
    while !(input.is_empty() && link.is_idle()) {
        link.offer(&mut input);
        link.drain(&mut output);
        guard += 1;
        assert!(guard < 500, "link did not drain");
    }

    let (frame, _meta) = output.pop_frame().expect("exactly one frame must arrive");
    let (protocol, payload) = decap(&frame).expect("frames carry a protocol");
    println!("received:   protocol={protocol:#06X} payload={payload:02X?}");
    assert_eq!(payload, &datagram[..]);
    assert_eq!(protocol, 0x0021);
    println!(
        "counters:   ok={} fcs_err={} (escapes inserted on tx: {})",
        link.second.device().rx_counters().frames_ok,
        link.second.device().rx_counters().fcs_errors,
        link.first.device().tx.escape.escapes_inserted,
    );
    println!("round trip OK — flag 7E was stuffed to 7D 5E on the wire and restored.");

    // The same counters, as the observability layer exports them: one
    // Snapshot per stage (see DESIGN.md §13).
    let snaps = [link.first.snapshot(), link.second.snapshot()];
    println!("\nfinal metrics snapshot:\n{}", render_table(&snaps));
}
