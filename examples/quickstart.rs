//! Quickstart: encode one IP datagram into a PPP frame, push it through
//! the cycle-accurate 32-bit P⁵, and decode it on the other side.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use p5_core::{DatapathWidth, P5};

fn main() {
    // Two P⁵ devices wired back to back (Figure 2, both directions).
    let mut left = P5::new(DatapathWidth::W32);
    let mut right = P5::new(DatapathWidth::W32);

    // A datagram with bytes that need escaping (the paper's example
    // sequence 31 33 7E 96 is in there).
    let datagram = vec![0x31, 0x33, 0x7E, 0x96, 0x7D, 0x00, 0x42];
    println!("datagram:   {:02X?}", datagram);
    left.submit(0x0021, datagram.clone());

    // Clock both devices; ferry wire bytes across.
    for _ in 0..200 {
        left.clock();
        right.clock();
        let wire = left.take_wire_out();
        if !wire.is_empty() {
            println!("wire chunk: {:02X?}", wire);
        }
        right.put_wire_in(&wire);
    }

    let frames = right.take_received();
    assert_eq!(frames.len(), 1, "exactly one frame must arrive");
    let frame = &frames[0];
    println!(
        "received:   address={:#04X} protocol={:#06X} payload={:02X?}",
        frame.address, frame.protocol, frame.payload
    );
    assert_eq!(frame.payload, datagram);
    assert_eq!(frame.protocol, 0x0021);
    println!(
        "counters:   ok={} fcs_err={} (escapes inserted on tx: {})",
        right.rx_counters().frames_ok,
        right.rx_counters().fcs_errors,
        left.tx.escape.escapes_inserted,
    );
    println!("round trip OK — flag 7E was stuffed to 7D 5E on the wire and restored.");
}
