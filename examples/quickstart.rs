//! Quickstart: encode one IP datagram into a PPP frame, push it through
//! the cycle-accurate 32-bit P⁵, and decode it on the other side — the
//! whole link assembled by [`LinkBuilder`], the paved road every
//! example, test and bench binary uses.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use p5::prelude::*;

fn main() {
    // Two P⁵ devices wired back to back (Figure 2, both directions):
    // transmit-stage → receive-stage, with the OAM handles kept
    // reachable for the counter read-out at the end.
    let mut link = LinkBuilder::new()
        .width(DatapathWidth::W32)
        .build()
        .expect("a clean link always builds");

    // A datagram with bytes that need escaping (the paper's example
    // sequence 31 33 7E 96 is in there).
    let datagram = vec![0x31, 0x33, 0x7E, 0x96, 0x7D, 0x00, 0x42];
    println!("datagram:   {:02X?}", datagram);

    link.send(0x0021, &datagram);
    link.run(500).expect("link must drain");

    let deliveries = link.deliveries();
    let (protocol, payload) = deliveries.first().expect("exactly one frame must arrive");
    println!("received:   protocol={protocol:#06X} payload={payload:02X?}");
    assert_eq!(payload, &datagram);
    assert_eq!(*protocol, 0x0021);
    println!(
        "counters:   rx_ok={} fcs_err={} tx_frames={}",
        link.rx_oam().read(regs::RX_FRAMES),
        link.rx_oam().read(regs::FCS_ERRORS),
        link.tx_oam().read(regs::TX_FRAMES),
    );
    println!("round trip OK — flag 7E was stuffed to 7D 5E on the wire and restored.");

    // The same counters, as the observability layer exports them: one
    // Snapshot per stage (see DESIGN.md §13).
    println!(
        "\nfinal metrics snapshot:\n{}",
        render_table(&link.snapshots())
    );

    // Chaos quickstart: the same link, seeded bit errors on the wire.
    // Nothing corrupt is ever delivered — broken frames land in the
    // error counters instead (DESIGN.md §14).
    let plan = FaultSpec::clean().ber(1e-4).compile(7).expect("valid spec");
    let mut noisy = LinkBuilder::new().fault(plan).build().expect("valid plan");
    for i in 0..50u8 {
        noisy.send(0x0021, &[i; 64]);
    }
    noisy.run(5_000).expect("noisy link still drains");
    let ok = noisy.deliveries().len() as u64;
    println!(
        "\nchaos run:  sent=50 delivered={} counted-drops={}",
        ok,
        noisy.rx_errors()
    );
    // One-sided accounting: a corrupted flag can merge two frames into
    // one FCS error, so the sum can undershoot by a few (DESIGN.md §14).
    assert!(ok + noisy.rx_errors() >= 50 - 4);
}
