//! Full synthesis report — regenerates Tables 1, 2 and 3 plus the §5
//! headline claims in one run (the per-table binaries live in
//! `p5-bench`; this example aggregates them through the public API).
//!
//! ```sh
//! cargo run --release --example synthesis_report
//! ```

use p5_fpga::{devices, synthesize};
use p5_rtl::{build_escape_gen, synthesize_system, SorterStyle};

fn main() {
    println!("=== Table 1: P5 8-bit implementation ===");
    for dev in [devices::XCV50_4, devices::XC2V40_6] {
        print!("{}", synthesize_system(1, &dev).render());
    }

    println!("\n=== Table 2: P5 32-bit implementation ===");
    for dev in [devices::XCV600_4, devices::XC2V1000_6] {
        print!("{}", synthesize_system(4, &dev).render());
    }

    println!("\n=== Table 3: Escape Generator on XC2V40-6 ===");
    let dev = devices::XC2V40_6;
    let w32 = synthesize(&build_escape_gen(4, SorterStyle::Barrel), &dev);
    let w8 = synthesize(&build_escape_gen(1, SorterStyle::Barrel), &dev);
    println!("  {}", w32.table_row());
    println!("  {}", w8.table_row());

    println!("\n=== Headline claims (paper section 5) ===");
    let s8 = synthesize_system(1, &devices::XCV600_4);
    let s32 = synthesize_system(4, &devices::XCV600_4);
    println!(
        "32-bit / 8-bit system area: {:.1}x   (paper: ~11x)",
        s32.total_luts_post as f64 / s8.total_luts_post as f64
    );
    println!(
        "escape-gen 32/8 ratios: {:.0}x LUTs, {:.0}x FFs   (paper: 25x, 28x)",
        w32.luts_post as f64 / w8.luts_post as f64,
        w32.ffs as f64 / w8.ffs as f64
    );
    let v2 = synthesize_system(4, &devices::XC2V1000_6);
    println!(
        "XC2V1000 utilisation: {:.0}%   (paper: ~25%, room for a MicroBlaze)",
        100.0 * v2.lut_util_post
    );
    println!(
        "78.125 MHz line clock: Virtex-II {} ({:.1} MHz), Virtex {} ({:.1} MHz)",
        if v2.meets_line_rate { "MET" } else { "missed" },
        v2.fmax_post_mhz,
        if s32.meets_line_rate { "met" } else { "MISSED" },
        s32.fmax_post_mhz
    );
}
