//! Two real PPP endpoints over an actual TCP loopback socket.
//!
//! Each endpoint is a [`LinkBuilder::build_remote`] product: a P⁵
//! device plus an RFC 1661 session bound to a [`TcpTransport`], pumped
//! by its own driver thread.  The two threads here could just as well
//! be two processes — or two machines — since nothing crosses between
//! them except wire bytes on the socket.
//!
//! The demo brings up LCP → IPCP over loopback, pushes an IMIX-ish
//! burst each way, and prints the per-session transport counters
//! (bytes, short writes, idle fill) that a real deployment would
//! scrape.
//!
//! ```sh
//! cargo run --release --example tcp_endpoints
//! ```

use std::time::{Duration, Instant};

use p5::prelude::*;

const IPV4: u16 = 0x0021;

fn endpoint(transport: TcpTransport, magic: u32, ip: [u8; 4]) -> SessionDriver {
    LinkBuilder::new()
        .profile(NegotiationProfile::new().magic(magic).ip(ip))
        .transport(transport)
        .build_remote()
        .expect("remote endpoint")
}

fn burst(tx: &SessionDriver, rx: &SessionDriver, label: &str, frames: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut sent = 0usize;
    let mut got = 0usize;
    let mut bytes = 0usize;
    while got < frames {
        assert!(Instant::now() < deadline, "{label}: exchange stalled");
        if sent < frames {
            let len = [64, 576, 1500][sent % 3];
            let payload = vec![sent as u8; len];
            if tx.offer(IPV4, &payload).is_admitted() {
                sent += 1;
            }
        }
        for (_, frame) in rx.take_deliveries() {
            got += 1;
            bytes += frame.len();
        }
    }
    println!("[{label}] {got} frames, {bytes} payload bytes delivered");
}

fn main() {
    // The server binds an ephemeral loopback port and accepts from its
    // driver loop; the client dials it.
    let server = TcpTransport::listen("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    println!("server listening on {addr}");

    let a = endpoint(server, 0xCAFE_0001, [192, 168, 50, 1]);
    let b = endpoint(
        TcpTransport::connect(addr).expect("dial loopback"),
        0xCAFE_0002,
        [192, 168, 50, 2],
    );

    let t0 = Instant::now();
    assert!(a.await_network_up(Duration::from_secs(10)), "server IPCP");
    assert!(b.await_network_up(Duration::from_secs(10)), "client IPCP");
    println!(
        "LCP + IPCP negotiated over TCP loopback in {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    burst(&a, &b, "a->b", 60);
    burst(&b, &a, "b->a", 60);

    for (name, driver) in [("a", a), ("b", b)] {
        let engine = driver.shutdown();
        let c = engine.counters;
        println!(
            "[{name}] out {}B in {}B / short writes {} / idle fill {}B / \
             reconnects {} io_errors {}",
            c.bytes_out, c.bytes_in, c.short_writes, c.idle_fill_bytes, c.reconnects, c.io_errors
        );
    }
}
