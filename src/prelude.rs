//! The one `use` line for assembling and driving links.
//!
//! ```
//! use p5::prelude::*;
//!
//! let mut link = LinkBuilder::new().width(DatapathWidth::W32).build().unwrap();
//! link.send(0x0021, b"datagram");
//! link.run(2_000).unwrap();
//! assert_eq!(link.deliveries().len(), 1);
//! ```
//!
//! Everything here is re-exported from the workspace crates; reach into
//! [`crate::core`], [`crate::sonet`] etc. for the full per-layer APIs,
//! and use the [`stack!`] macro directly when a custom topology is
//! needed (the documented low-level escape hatch).

pub use p5_core::oam::{regs, MmioBus, Oam, OamHandle};
pub use p5_core::{decap, encap, DatapathWidth, ReceivedFrame, RxStage, TxQueueFull, TxStage, P5};
pub use p5_fault::{
    BurstModel, FaultError, FaultKind, FaultPlan, FaultSpec, FaultStage, FaultStats, StallStorm,
};
pub use p5_hdlc::{DeframerConfig, FcsMode};
pub use p5_link::{DuplexLink, Link, LinkBuilder, LinkEnd, LinkError};
pub use p5_obs::{serve, Collector, CollectorConfig, HealthPolicy, HealthState, ObsHub};
pub use p5_ppp::{AuthPolicy, CredentialTable, NegotiationProfile, Session, SessionEvent};
pub use p5_runtime::{Carrier, Fleet, FleetConfig, FleetStats, Sharding, TrafficSpec};
pub use p5_sonet::{BitErrorChannel, OcPath, OcPathStage, StmLevel, TributaryGroup};
pub use p5_stream::{
    render_table, stack, Chain, Observable, Offer, Pipe, Poll, SharedRecorder, Snapshot, Stack,
    StageStats, StreamStage, Throttle, WireBuf, WordStream,
};
#[cfg(unix)]
pub use p5_xport::UnixTransport;
pub use p5_xport::{LinkEngine, PipeTransport, SessionDriver, TcpTransport, Transport};
