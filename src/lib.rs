//! # P⁵ — a full-system reproduction of "A Programmable and Highly
//! Pipelined PPP Architecture for Gigabit IP over SDH/SONET"
//! (Toal & Sezer, IPDPS/IPPS 2003).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`crc`] — parallel CRC engines (FCS-16/FCS-32, Pei–Zukowski
//!   matrices);
//! * [`hdlc`] — octet-stuffed HDLC framing (RFC 1662), the behavioural
//!   golden model;
//! * [`ppp`] — PPP frame fields, LCP/IPCP, the RFC 1661 automaton,
//!   MAPOS addressing;
//! * [`sonet`] — STM-4/STM-16 transmission convergence + error channel;
//! * [`core`] — the cycle-accurate P⁵ itself (8-bit and 32-bit
//!   datapaths, escape units, OAM);
//! * [`fpga`] — netlist IR, 4-LUT technology mapper, Virtex/Virtex-II
//!   device library, STA;
//! * [`rtl`] — the P⁵ modules as gate-level netlists (Tables 1–3);
//! * [`fault`] — deterministic, seedable fault injection (BER, bursts,
//!   slips, aborts, stall storms);
//! * [`link`] — [`link::LinkBuilder`], the one way to assemble a link;
//! * [`runtime`] — the carrier-scale multi-link runtime:
//!   [`runtime::Fleet`] shards thousands of duplex links across a
//!   fixed worker pool with bounded ingress, graceful overload
//!   shedding and channelized SDH carriage;
//! * [`obs`] — live fleet observability: [`obs::Collector`] time-series
//!   telemetry, per-link hysteresis health scoring, freezing flight
//!   recorders, and [`obs::serve`], a dependency-free HTTP scrape
//!   endpoint (`/metrics`, `/health`, `/flight`);
//! * [`xport`] — real endpoints: [`xport::Transport`] byte pipes (TCP,
//!   Unix-domain, in-process), [`xport::LinkEngine`] binding one
//!   device plus PPP session to a transport, and
//!   [`xport::SessionDriver`] dedicated pump threads — built by
//!   [`link::LinkBuilder::build_remote`].
//!
//! [`prelude`] re-exports the common assembly surface in one `use`.
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and the
//! per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured.

pub use p5_core as core;
pub use p5_crc as crc;
pub use p5_fault as fault;
pub use p5_fpga as fpga;
pub use p5_hdlc as hdlc;
pub use p5_link as link;
pub use p5_obs as obs;
pub use p5_ppp as ppp;
pub use p5_rtl as rtl;
pub use p5_runtime as runtime;
pub use p5_sonet as sonet;
pub use p5_xport as xport;

pub mod prelude;

/// The line clock (MHz) both datapath widths must meet:
/// 625 Mbps / 8 = 2.5 Gbps / 32 = 78.125 MHz.
pub const LINE_CLOCK_MHZ: f64 = 78.125;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        let _ = crate::crc::FCS32;
        let _ = crate::hdlc::FLAG;
        let _ = crate::core::DatapathWidth::W32;
        assert_eq!(crate::LINE_CLOCK_MHZ, 78.125);
    }
}
